"""The bundled effect rules, EFF001–EFF008.

Each pass consumes the shared :class:`~.engine.EffectContext` (harvest +
memoized footprints) and yields diagnostics.  The error-severity rules
certify the invariants the fast path and the edge compiler rely on;
the warning-severity rules surface effect smells that degrade
analyzability without being provably wrong.

========  =====================  ========================================
code      rule                   certifies
========  =====================  ========================================
EFF001    impure-guard           probe-time code baked by ``edgecompile``
                                 writes nothing beyond the transaction
EFF002    rank-stability-lie     ``@rank_stable_in_flight`` marks are
                                 honest (cached rank order stays valid)
EFF003    rank-input-mutation    in-flight edges don't silently mutate
                                 rank inputs behind the cached order
EFF004    write-write-race       co-enabled sibling edges don't write
                                 the same slot/shared location
EFF005    probe-divergence       custom probes honour the probe
                                 protocol; baked constants stay constant
EFF006    nondeterminism         edge code is replay-deterministic
EFF007    global-mutation        edge code doesn't write module globals
EFF008    opaque-code            certified positions are analyzable and
                                 every codegen fallback is accounted
========  =====================  ========================================
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ...core.osm import Edge
from ...core.primitives import Allocate, AllocateMany
from ..diagnostics import Diagnostic, Severity
from ..lint.passes import _fallible_signature
from .engine import EffectContext, EffectPass

#: per-OSM attributes the built-in rankings read; all are assigned only
#: at the state-I boundaries, so a marked rank key restricted to them
#: cannot change for an in-flight operation
RANK_STABLE_READS = {
    "osm",
    "osm.age",
    "osm.serial",
    "osm.tag",
    "osm.spec",
    "osm.operation",
    "osm.operation.seq",
}

#: writes to these exact paths re-rank an OSM; legal only on edges that
#: touch the initial state (where the director re-sorts anyway)
RANK_INPUT_PATHS = {
    "osm.operation",
    "osm.operation.seq",
    "osm.age",
    "osm.serial",
    "osm.tag",
}


def _probe_write_allowed(path: str) -> bool:
    """Writes the probe protocol sanctions: tentative effects go to the
    transaction, and a failed probe records what it blocked on."""
    return path == "txn" or path.startswith("txn.") or path == "osm.blocked_on"


def _shared_write(path: str) -> bool:
    return path.startswith(("shared:", "global:", "?"))


class ImpureGuardPass(EffectPass):
    """EFF001: a probe-time callable (guard predicate, dynamic token
    identifier, release value) with effects beyond the probe protocol.

    ``edgecompile`` bakes these callables into specialised probe
    functions and the director's version-gated fast path *skips
    re-probing* unchanged states — both transformations assume probing
    is free of side effects.  A guard that mutates OSM, manager, shared
    or global state (or bumps the observable version via ``notify``)
    breaks that assumption: how often it runs becomes behaviour.
    """

    code = "EFF001"
    rule = "impure-guard"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        for site in ctx.sites_by_role("guard", "ident", "value"):
            fp = ctx.footprint(site)
            bad = sorted(w for w in fp.writes if not _probe_write_allowed(w))
            if bad:
                yield self.diag(
                    ctx,
                    f"{site.name} writes {', '.join(bad)} at probe time — "
                    f"probe-time code is baked by the edge compiler and "
                    f"may be skipped by the version-gated fast path, so "
                    f"it must not have effects",
                    edge=site.edge,
                )
            if fp.notifies:
                yield self.diag(
                    ctx,
                    f"{site.name} calls notify() at probe time — bumping "
                    f"the observable version from inside a probe makes "
                    f"the fast path's re-probe decision self-triggering",
                    edge=site.edge,
                )


class RankStabilityPass(EffectPass):
    """EFF002: a rank key carrying the ``rank_stable_in_flight`` mark
    reads state that can change while an operation is in flight.

    The director keeps its cached rank order across control steps on
    the strength of the mark (re-sorting only at state-I boundaries).
    A marked key that reads anything beyond the I-boundary-stable
    attributes would let the cached order silently go stale — a
    scheduling bug that manifests as rare, input-dependent reorderings.
    """

    code = "EFF002"
    rule = "rank-stability-lie"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        for site in ctx.sites_by_role("rank"):
            if not getattr(site.fn, "rank_changes_only_at_initial", False):
                continue  # unmarked keys are conservatively re-sorted
            fp = ctx.footprint(site)
            if not fp.analyzable:
                yield self.diag(
                    ctx,
                    f"{site.name} is marked rank_stable_in_flight but its "
                    f"source is not analyzable ({fp.reason}) — the mark "
                    f"cannot be verified",
                    severity=Severity.WARNING,
                )
                continue
            bad_reads = sorted(r for r in fp.reads if r not in RANK_STABLE_READS)
            problems = []
            if bad_reads:
                problems.append(f"reads {', '.join(bad_reads)}")
            if fp.writes:
                problems.append(f"writes {', '.join(sorted(fp.writes))}")
            if fp.nondet:
                problems.append(
                    f"uses nondeterminism ({', '.join(sorted(fp.nondet))})"
                )
            if problems:
                yield self.diag(
                    ctx,
                    f"{site.name} is marked rank_stable_in_flight but "
                    f"{'; '.join(problems)} — only I-boundary-stable OSM "
                    f"attributes (age, serial, tag, operation identity, "
                    f"operation.seq) may feed a marked ranking; the "
                    f"director's cached rank order would go stale",
                )


class RankInputMutationPass(EffectPass):
    """EFF003: an in-flight edge (neither endpoint initial) whose action
    or destination ``on_enter`` writes a rank input.

    With a marked rank key the director re-sorts only after transitions
    touching state I; an action on an interior edge that reassigns
    ``osm.operation``/``age``/``tag``/``seq`` changes the OSM's rank
    without marking the cached order dirty.
    """

    code = "EFF003"
    rule = "rank-input-mutation"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        rank_key = getattr(ctx.spec, "analysis_rank_key", None)
        if rank_key is None or not getattr(
            rank_key, "rank_changes_only_at_initial", False
        ):
            return  # unmarked/unknown ranking: director re-sorts anyway
        for site in ctx.sites_by_role("action"):
            edge = site.edge
            if edge is None or edge.src.is_initial or edge.dst.is_initial:
                continue
            fp = ctx.footprint(site)
            bad = sorted(w for w in fp.writes if w in RANK_INPUT_PATHS)
            if bad:
                yield self.diag(
                    ctx,
                    f"{site.name} on in-flight edge writes {', '.join(bad)} "
                    f"— rank inputs may only change at state-I boundaries, "
                    f"where the director re-sorts its cached rank order",
                    edge=edge,
                )
        inbound: Dict[str, List[Edge]] = {}
        for edge in ctx.spec.edges:
            inbound.setdefault(edge.dst.name, []).append(edge)
        for site in ctx.sites_by_role("on_enter"):
            interior = [
                e for e in inbound.get(site.state, [])
                if not (e.src.is_initial or e.dst.is_initial)
            ]
            if not interior:
                continue
            fp = ctx.footprint(site)
            bad = sorted(w for w in fp.writes if w in RANK_INPUT_PATHS)
            if bad:
                yield self.diag(
                    ctx,
                    f"{site.name} of state {site.state} writes "
                    f"{', '.join(bad)} and the state is entered by "
                    f"in-flight edge(s) "
                    f"{', '.join(e.qualname for e in interior)} — rank "
                    f"inputs may only change at state-I boundaries",
                    state=site.state,
                )


def _edge_write_targets(ctx: EffectContext, edge: Edge) -> Set[str]:
    """The statically-known write targets of one edge firing: token
    slots it allocates into, plus shared/global writes of its callables."""
    targets: Set[str] = set()
    for primitive in edge.condition.primitives:
        if isinstance(primitive, Allocate):
            targets.add(f"slot:{primitive.slot}")
        elif isinstance(primitive, AllocateMany):
            targets.add(f"slot:{primitive.slot}*")
    for site in ctx.sites:
        if site.edge is not edge:
            continue
        fp = ctx.footprint(site)
        targets.update(w for w in fp.writes if _shared_write(w))
    return targets


class WriteRacePass(EffectPass):
    """EFF004: same-priority sibling edges that are not statically
    disjoint and write overlapping targets.

    Two OSMs sitting in the same state in the same control step may
    take *different* same-priority siblings; when the siblings are not
    statically distinguishable (one fallible signature contains the
    other) and both write the same token slot or the same shared
    location, which write lands last is decided by the director's rank
    order — a scheduling-sensitive race the edge compiler must not fuse
    and model authors almost never intend.
    """

    code = "EFF004"
    rule = "write-write-race"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        for state in ctx.spec.states.values():
            by_priority: Dict[int, List[Edge]] = {}
            for edge in state.out_edges:
                by_priority.setdefault(edge.priority, []).append(edge)
            for priority, group in by_priority.items():
                if len(group) < 2:
                    continue
                annotated = [
                    (edge, _fallible_signature(edge), _edge_write_targets(ctx, edge))
                    for edge in group
                ]
                for i, (edge_a, sig_a, wr_a) in enumerate(annotated):
                    for edge_b, sig_b, wr_b in annotated[i + 1:]:
                        if not (sig_a <= sig_b or sig_b <= sig_a):
                            continue  # statically disjoint: cannot co-fire
                        overlap = sorted(wr_a & wr_b)
                        if overlap:
                            yield self.diag(
                                ctx,
                                f"not statically disjoint from same-priority "
                                f"sibling {edge_b.qualname!r} and both write "
                                f"{', '.join(overlap)} — which write lands "
                                f"is decided by scheduling order (priority "
                                f"{priority})",
                                edge=edge_a,
                            )


class ProbeDivergencePass(EffectPass):
    """EFF005: custom primitive probes that break the probe protocol,
    and edge code that mutates baked primitive constants.

    A custom ``Primitive.probe`` that writes shared state diverges
    between compiled and interpreted execution (the compiler's plan
    cache changes how often probes run).  Likewise, an action that
    rebinds an attribute of a primitive object (e.g. changing an
    ``Allocate``'s identifier after build) invalidates the constants
    the edge compiler baked into specialised probes at plan time.
    """

    code = "EFF005"
    rule = "probe-divergence"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        for site in ctx.sites_by_role("probe"):
            fp = ctx.footprint(site)
            bad = sorted(w for w in fp.writes if not _probe_write_allowed(w))
            if bad or fp.notifies:
                effects = bad + (["notify()"] if fp.notifies else [])
                yield self.diag(
                    ctx,
                    f"{site.name} writes {', '.join(effects)} — a probe "
                    f"must record tentative effects only in the "
                    f"transaction; anything else diverges between "
                    f"compiled and interpreted probing",
                    edge=site.edge,
                )
        prim_types = {
            type(p).__name__
            for e in ctx.spec.edges
            for p in e.condition.primitives
        }
        prim_roots = {f"shared:{name}." for name in prim_types}
        for site in ctx.sites_by_role("action", "on_enter", "guard", "ident", "value"):
            fp = ctx.footprint(site)
            baked = sorted(
                w for w in fp.writes
                if any(w.startswith(root) for root in prim_roots)
            )
            if baked:
                yield self.diag(
                    ctx,
                    f"{site.name} writes primitive attribute(s) "
                    f"{', '.join(baked)} — the edge compiler bakes "
                    f"primitive constants into specialised probes at "
                    f"plan-build time, so later mutation silently "
                    f"diverges from the interpreted condition",
                    edge=site.edge,
                    state=site.state,
                )


class NondetPass(EffectPass):
    """EFF006: edge code touching nondeterminism sources.

    ``repro bench`` verifies the fast path by re-running under the
    reference scheduler and comparing results; any ``random``/``time``/
    ``id()``-dependent edge code makes runs non-replayable and the
    verification meaningless.
    """

    code = "EFF006"
    rule = "nondeterminism"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        for site in ctx.sites:
            fp = ctx.footprint(site)
            if fp.nondet:
                yield self.diag(
                    ctx,
                    f"{site.name} uses nondeterminism source(s) "
                    f"{', '.join(sorted(fp.nondet))} — simulation results "
                    f"would not be replay-deterministic",
                    edge=site.edge,
                    state=site.state,
                )


class GlobalWritePass(EffectPass):
    """EFF007: edge code writing module-global state.

    Not necessarily wrong (a debug counter, a trace hook) but it leaks
    simulation state out of the OSM/manager world the analyses reason
    about, and makes model instances interfere with each other.
    """

    code = "EFF007"
    rule = "global-mutation"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        for site in ctx.sites:
            fp = ctx.footprint(site)
            bad = sorted(w for w in fp.writes if w.startswith("global:"))
            if bad:
                yield self.diag(
                    ctx,
                    f"{site.name} writes module global(s) {', '.join(bad)}",
                    severity=Severity.WARNING,
                    edge=site.edge,
                    state=site.state,
                )


class OpaqueCodePass(EffectPass):
    """EFF008: unanalyzable code in certified positions, and every edge
    whose probe fell back to the interpreter.

    The purity certificates of EFF001/EFF002/EFF005 are only as good as
    the analyzer's visibility; a probe-time callable it cannot see
    through gets a warning instead of a silent pass.  The second half
    surfaces the edge compiler's own census: each edge whose condition
    could not be compiled (opt-out primitive, codegen error, policy) is
    named with its reason, so fallbacks are a visible budget rather
    than a silent slowdown.
    """

    code = "EFF008"
    rule = "opaque-code"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        for site in ctx.sites:
            if not (site.probe_time or site.role == "rank"):
                continue
            fp = ctx.footprint(site)
            if not fp.analyzable:
                yield self.diag(
                    ctx,
                    f"{site.name} is not statically analyzable "
                    f"({fp.reason}) — its purity cannot be certified",
                    severity=Severity.WARNING,
                    edge=site.edge,
                    state=site.state,
                )
            elif fp.opaque:
                yield self.diag(
                    ctx,
                    f"{site.name} makes call(s) the analyzer cannot see "
                    f"through: {', '.join(sorted(fp.opaque))} — purity "
                    f"certified only for the visible part",
                    severity=Severity.WARNING,
                    edge=site.edge,
                    state=site.state,
                )
            elif fp.via_bytecode:
                yield self.diag(
                    ctx,
                    f"{site.name} was analyzed from bytecode only (no "
                    f"recoverable source) — footprint is coarse",
                    severity=Severity.WARNING,
                    edge=site.edge,
                    state=site.state,
                )
        stats = ctx.compile_stats
        if stats is not None:
            edges = {edge.qualname: edge for edge in ctx.spec.edges}
            for qualname, reason in stats.fallback_edges:
                edge_obj = edges.get(qualname)
                message = f"edge probe falls back to the interpreter ({reason})"
                if edge_obj is None:
                    message = f"{qualname}: {message}"
                yield self.diag(
                    ctx, message, severity=Severity.WARNING, edge=edge_obj
                )
