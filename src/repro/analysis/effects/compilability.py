"""Per-model compilability report: which states the edge compiler may
treat aggressively.

effectcheck's certification output, consumed by
:func:`repro.core.edgecompile.apply_compilability`: a per-state verdict
(*fusable* — every outgoing edge's probe-time code is certified pure and
compiled, so the whole probe plan could be fused into one specialised
function or AOT-compiled) plus the list of *unsafe edges* whose baked
probes the effect analysis could not certify and which should therefore
run interpreted.

Verdicts are derived from an effects :class:`~..diagnostics.Report`:

* a state is **fusable** when none of its outgoing edges carries an
  unsuppressed error-severity EFF001/EFF004/EFF005/EFF006 finding and
  none carries an (unsuppressed) EFF008 finding — i.e. probing the
  state is provably effect-free, race-free, deterministic, and fully
  visible to both the analyzer and the compiler;
* an edge is **unsafe** when it carries an unsuppressed error-severity
  EFF001/EFF005/EFF006 finding — its compiled probe would bake
  assumptions the analysis refuted, so interpretation is the honest
  mode.

Audited suppressions (``allow_lint("EFF…")``) are deliberately excluded
from both: a suppression is a human assertion that the finding is a
false positive, and the report trusts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ...core.osm import MachineSpec
from ..diagnostics import Report, Severity

#: error codes that block whole-state fusion
FUSION_BLOCKERS = {"EFF001", "EFF004", "EFF005", "EFF006"}

#: error codes that make one edge's *compiled* probe dishonest
EDGE_UNSAFE_CODES = {"EFF001", "EFF005", "EFF006"}

#: the analyzability/fallback rule: warnings here block fusion too,
#: because fusing code nobody can see through certifies nothing
OPACITY_CODE = "EFF008"


@dataclass
class StateVerdict:
    state: str
    fusable: bool
    #: rule codes of the findings that blocked fusion (empty if fusable)
    blockers: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"fusable": self.fusable, "blockers": list(self.blockers)}


@dataclass
class CompilabilityReport:
    spec: str
    verdicts: Dict[str, StateVerdict] = field(default_factory=dict)
    #: qualnames of edges whose compiled probe is not certified honest
    unsafe_edges: List[str] = field(default_factory=list)

    @property
    def fusable_states(self) -> List[str]:
        return sorted(v.state for v in self.verdicts.values() if v.fusable)

    @property
    def fully_compilable(self) -> bool:
        """Every state fusable and no unsafe edge: the whole model is
        certified for aggressive compilation."""
        return not self.unsafe_edges and all(
            v.fusable for v in self.verdicts.values()
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "fully_compilable": self.fully_compilable,
            "fusable_states": self.fusable_states,
            "states": {
                name: verdict.to_dict()
                for name, verdict in sorted(self.verdicts.items())
            },
            "unsafe_edges": sorted(self.unsafe_edges),
        }


def compilability_report(spec: MachineSpec, report: Report) -> CompilabilityReport:
    """Derive the per-state fusion verdicts and unsafe-edge list of
    *spec* from an effects *report* over it."""
    edge_findings: Dict[str, List] = {}
    for diagnostic in report.diagnostics:
        if diagnostic.suppressed or diagnostic.edge is None:
            continue
        edge_findings.setdefault(diagnostic.edge, []).append(diagnostic)

    result = CompilabilityReport(spec=spec.name)
    unsafe: set = set()
    for state in spec.states.values():
        blockers: List[str] = []
        for edge in state.out_edges:
            for diagnostic in edge_findings.get(edge.qualname, ()):
                code = diagnostic.code
                blocking = (
                    code in FUSION_BLOCKERS
                    and diagnostic.severity is Severity.ERROR
                ) or code == OPACITY_CODE
                if blocking:
                    blockers.append(code)
                if (
                    code in EDGE_UNSAFE_CODES
                    and diagnostic.severity is Severity.ERROR
                ):
                    unsafe.add(edge.qualname)
        result.verdicts[state.name] = StateVerdict(
            state=state.name,
            fusable=not blockers,
            blockers=sorted(set(blockers)),
        )
    result.unsafe_edges = sorted(unsafe)
    return result
