"""effectcheck: static effect/purity analysis of OSM edge code.

The simulator's fast paths rest on behavioural contracts that nothing
else enforces: probe-time code must be pure (the edge compiler bakes it
and the director's version gate skips it), ``rank_stable_in_flight``
marks must be honest (the cached rank order is kept on their strength),
and co-enabled edges must not race on writes.  effectcheck infers a
per-callable effect footprint (:mod:`.footprint`), checks the contracts
as rules EFF001–EFF008 (:mod:`.passes`), and distils a per-model
compilability report (:mod:`.compilability`) that
:func:`repro.core.edgecompile.apply_compilability` consumes to demote
uncertified edges to interpreted probing.

Front end: ``repro effects <model>|all [--json]``.
"""

from .compilability import (
    CompilabilityReport,
    StateVerdict,
    compilability_report,
)
from .engine import (
    DEFAULT_PASSES,
    CallableSite,
    EffectContext,
    EffectPass,
    default_passes,
    effects_spec,
    harvest_spec,
)
from .footprint import Footprint, analyze_callable
from ..registry import available_specs, build_spec

__all__ = [
    "CallableSite",
    "CompilabilityReport",
    "DEFAULT_PASSES",
    "EffectContext",
    "EffectPass",
    "Footprint",
    "StateVerdict",
    "analyze_callable",
    "available_specs",
    "build_spec",
    "compilability_report",
    "default_passes",
    "effects_spec",
    "harvest_spec",
]
