"""effectcheck engine: callable harvest, shared context, driver.

Mirrors the lint engine's shape (pass protocol + lazily-computed shared
facts + suppression resolution) so the two front ends stay structurally
interchangeable.  The facts here are *effect footprints*: the harvest
walks one :class:`~repro.core.MachineSpec` and collects every Python
callable the spec can execute — guard predicates, dynamic token
identifiers, release values, custom primitive probes, edge actions,
state ``on_enter`` hooks and the director rank key breadcrumb — each
tagged with its *role*, because the invariants differ by role: code the
edge compiler bakes (probe-time roles) must be pure, actions merely
must not lie to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...core.osm import Edge, MachineSpec
from ...core.primitives import (
    Allocate,
    AllocateMany,
    Condition,
    Discard,
    Guard,
    Inquire,
    Release,
    ReleaseMany,
)
from ..diagnostics import Diagnostic, Report, Severity
from .footprint import Footprint, analyze_callable

#: primitive types whose probe implementations are part of the trusted
#: core (re-analyzing them would audit the framework, not the model)
CORE_PRIMITIVES = (
    Allocate, AllocateMany, Inquire, Release, ReleaseMany, Discard, Guard,
)

#: roles whose code runs at probe time and is baked by the edge compiler
PROBE_TIME_ROLES = ("guard", "ident", "value", "probe")

#: recursion depth for probe-time callables vs. post-commit actions
#: (actions run identically in compiled and interpreted modes, so only
#: their *direct* effects concern the scheduler-facing rules)
PROBE_DEPTH = 3
ACTION_DEPTH = 0


@dataclass
class CallableSite:
    """One harvested callable with its location and analysis role."""

    role: str                      #: guard|ident|value|probe|action|on_enter|rank
    fn: object
    param_roles: Tuple[str, ...]
    name: str                      #: display name for diagnostics
    edge: Optional[Edge] = None
    state: Optional[str] = None
    primitive: Optional[object] = None

    @property
    def probe_time(self) -> bool:
        return self.role in PROBE_TIME_ROLES


def _callable_name(fn) -> str:
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None)
    return name or repr(fn)


def harvest_spec(spec: MachineSpec) -> List[CallableSite]:
    """Collect every analyzable callable hanging off *spec*."""
    sites: List[CallableSite] = []
    for edge in spec.edges:
        condition = edge.condition
        primitives = condition.primitives if isinstance(condition, Condition) else []
        for primitive in primitives:
            if isinstance(primitive, Guard):
                sites.append(CallableSite(
                    role="guard", fn=primitive.predicate, param_roles=("osm",),
                    name=f"guard {primitive.label!r}", edge=edge,
                    primitive=primitive,
                ))
            elif isinstance(primitive, (Allocate, Inquire)):
                if callable(primitive.ident):
                    sites.append(CallableSite(
                        role="ident", fn=primitive.ident, param_roles=("osm",),
                        name=f"{primitive.kind} identifier "
                             f"{_callable_name(primitive.ident)}",
                        edge=edge, primitive=primitive,
                    ))
            elif isinstance(primitive, AllocateMany):
                sites.append(CallableSite(
                    role="ident", fn=primitive.idents, param_roles=("osm",),
                    name=f"allocate-many identifiers "
                         f"{_callable_name(primitive.idents)}",
                    edge=edge, primitive=primitive,
                ))
            elif isinstance(primitive, Release):
                if primitive.value is not None:
                    sites.append(CallableSite(
                        role="value", fn=primitive.value, param_roles=("osm",),
                        name=f"release value {_callable_name(primitive.value)}",
                        edge=edge, primitive=primitive,
                    ))
            elif isinstance(primitive, ReleaseMany):
                if primitive.value is not None:
                    sites.append(CallableSite(
                        role="value", fn=primitive.value,
                        param_roles=("osm", "token"),
                        name=f"release-many value "
                             f"{_callable_name(primitive.value)}",
                        edge=edge, primitive=primitive,
                    ))
            if not isinstance(primitive, CORE_PRIMITIVES):
                probe = getattr(primitive, "probe", None)
                if callable(probe):
                    sites.append(CallableSite(
                        role="probe", fn=probe, param_roles=("osm", "txn"),
                        name=f"custom probe {type(primitive).__name__}.probe",
                        edge=edge, primitive=primitive,
                    ))
        if edge.action is not None:
            sites.append(CallableSite(
                role="action", fn=edge.action, param_roles=("osm",),
                name=f"action {_callable_name(edge.action)}", edge=edge,
            ))
    for state in spec.states.values():
        if state.on_enter is not None:
            sites.append(CallableSite(
                role="on_enter", fn=state.on_enter, param_roles=("osm",),
                name=f"on_enter {_callable_name(state.on_enter)}",
                state=state.name,
            ))
    rank_key = getattr(spec, "analysis_rank_key", None)
    if rank_key is not None:
        sites.append(CallableSite(
            role="rank", fn=rank_key, param_roles=("osm",),
            name=f"rank key {_callable_name(rank_key)}",
        ))
    return sites


class EffectContext:
    """Per-run shared facts: the harvest, memoized footprints, and the
    spec's compile statistics (with every probe plan forced)."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._sites: Optional[List[CallableSite]] = None
        self._footprints: Dict[Tuple[int, Tuple[str, ...], int], Footprint] = {}
        self._compile_stats = None

    @property
    def sites(self) -> List[CallableSite]:
        if self._sites is None:
            self._sites = harvest_spec(self.spec)
        return self._sites

    def sites_by_role(self, *roles: str) -> Iterator[CallableSite]:
        for site in self.sites:
            if site.role in roles:
                yield site

    def footprint(self, site: CallableSite) -> Footprint:
        depth = PROBE_DEPTH if site.probe_time or site.role == "rank" else ACTION_DEPTH
        key = (id(site.fn), site.param_roles, depth)
        fp = self._footprints.get(key)
        if fp is None:
            fp = analyze_callable(site.fn, site.param_roles, depth=depth)
            self._footprints[key] = fp
        return fp

    @property
    def compile_stats(self):
        """The spec's :class:`~repro.core.edgecompile.CompileStats` after
        forcing every state's probe plan, so the fallback census covers
        the whole spec rather than only the states a prior simulation
        happened to visit."""
        if self._compile_stats is None:
            for state in self.spec.states.values():
                state.probe_plan()
            self._compile_stats = getattr(self.spec, "compile_stats", None)
        return self._compile_stats


class EffectPass:
    """Base class of all effect rules (EFF001…)."""

    code: str = "EFF000"
    rule: str = "abstract"

    def run(self, ctx: EffectContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        ctx: EffectContext,
        message: str,
        severity: Severity = Severity.ERROR,
        state: Optional[str] = None,
        edge: Optional[Edge] = None,
    ) -> Diagnostic:
        if edge is not None and state is None:
            state = edge.src.name
        return Diagnostic(
            code=self.code,
            rule=self.rule,
            severity=severity,
            spec=ctx.spec.name,
            message=message,
            state=state,
            edge=edge.qualname if edge is not None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.code})"


def default_passes() -> List[EffectPass]:
    """Fresh instances of the bundled effect rules, in code order."""
    from .passes import (
        GlobalWritePass,
        ImpureGuardPass,
        NondetPass,
        OpaqueCodePass,
        ProbeDivergencePass,
        RankInputMutationPass,
        RankStabilityPass,
        WriteRacePass,
    )

    return [
        ImpureGuardPass(),
        RankStabilityPass(),
        RankInputMutationPass(),
        WriteRacePass(),
        ProbeDivergencePass(),
        NondetPass(),
        GlobalWritePass(),
        OpaqueCodePass(),
    ]


#: code -> pass class mapping of the bundled rules (for --rules filters)
DEFAULT_PASSES = {p.code: type(p) for p in default_passes()}


def effects_spec(
    spec: MachineSpec,
    passes: Optional[Sequence[EffectPass]] = None,
    codes: Optional[Iterable[str]] = None,
) -> Report:
    """Run the effect passes over *spec* and return the report.

    Suppression reuses the lint allow channel: an ``EFF`` code named in
    ``edge.lint_allow`` or ``spec.lint_allow`` marks the finding as an
    audited suppression (kept in the report, excluded from the
    pass/fail verdict and from the compilability blockers).
    """
    if passes is None:
        passes = default_passes()
    if codes is not None:
        wanted = set(codes)
        unknown = wanted - {p.code for p in passes}
        if unknown:
            raise ValueError(f"unknown effect rule code(s): {sorted(unknown)}")
        passes = [p for p in passes if p.code in wanted]

    ctx = EffectContext(spec)
    report = Report(spec=spec.name, tool="effects")
    spec_allow = set(getattr(spec, "lint_allow", ()))
    edge_allow = {edge.qualname: set(edge.lint_allow) for edge in spec.edges}
    for effect_pass in passes:
        report.passes_run.append(effect_pass.code)
        for diagnostic in effect_pass.run(ctx):
            if diagnostic.code in spec_allow:
                diagnostic.suppressed = True
            elif diagnostic.edge is not None and diagnostic.code in edge_allow.get(
                diagnostic.edge, ()
            ):
                diagnostic.suppressed = True
            report.diagnostics.append(diagnostic)
    report.sort()
    return report
