"""Compiler-facing information extraction (Section 6).

"Operation properties such as the operand latencies and reservation
tables can also be extracted and used by a retargetable compiler during
operation scheduling."

Two extractors are provided:

* :func:`reservation_table` — static: walks the specification's canonical
  operation path and reports which structure resources an operation holds
  at each step after leaving the initial state — the classic reservation
  table a scheduler uses for structural-hazard-aware scheduling.

* :func:`operand_latencies` — empirical: synthesises producer/consumer
  probe programs with varying separation and measures, per producer
  class, how many independent instructions a compiler must place between
  producer and consumer to avoid a stall.  This treats the simulator as
  the golden timing reference, which is exactly how a retargetable
  compiler back end would consume a generated model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..core.osm import Edge, MachineSpec
from ..core.primitives import Allocate, AllocateMany, Discard, Release, ReleaseMany


def canonical_path(spec: MachineSpec, max_steps: int = 32) -> List[Edge]:
    """The default (highest-priority non-reset) cycle I -> ... -> I."""
    if spec.initial is None:
        raise ValueError(f"{spec.name}: no initial state")
    path: List[Edge] = []
    state = spec.initial
    for _ in range(max_steps):
        # Prefer the forward edge: the lowest-priority edges are the
        # normal flow (reset edges carry high priority).
        forward = [e for e in state.out_edges if not (e.dst.is_initial and e.priority > 0)]
        if not forward:
            break
        # pick the lowest-priority (normal) edge deterministically
        edge = min(forward, key=lambda e: e.priority)
        path.append(edge)
        state = edge.dst
        if state.is_initial:
            break
    else:
        raise ValueError(f"{spec.name}: no I-to-I path within {max_steps} steps")
    return path


def reservation_table(spec: MachineSpec) -> List[Tuple[str, Tuple[str, ...]]]:
    """(state, resources held) per step along the canonical path."""
    path = canonical_path(spec)
    held: Dict[str, str] = {}  # slot -> manager name
    table: List[Tuple[str, Tuple[str, ...]]] = []
    for edge in path:
        for primitive in edge.condition.primitives:
            if isinstance(primitive, (Allocate, AllocateMany)):
                held[primitive.slot] = primitive.manager.name
            elif isinstance(primitive, Release):
                held.pop(primitive.slot, None)
            elif isinstance(primitive, ReleaseMany):
                for slot in [s for s in held if s.startswith(primitive.prefix)]:
                    held.pop(slot)
            elif isinstance(primitive, Discard):
                if primitive.slot is None:
                    held.clear()
                else:
                    held.pop(primitive.slot, None)
        if not edge.dst.is_initial:
            table.append((edge.dst.name, tuple(sorted(set(held.values())))))
    return table


#: producer templates per class: write r1 from r2/r3 inputs
_PRODUCERS = {
    "alu": "    add  r1, r2, r3",
    "mul": "    mul  r1, r2, r3",
    "load": "    ldr  r1, [r8]",
}

_PROBE_TEMPLATE = """
    .text
_start:
    li   r8, slot
    mov  r2, #21
    mov  r3, #2
    mov  r9, #0
loop:
{producer}
{fillers}
    add  r4, r1, #1      ; consumer of r1
    add  r9, r9, #1
    cmp  r9, #64
    blt  loop
    mov  r0, #0
    swi  #0
    .data
slot: .word 42
"""


def operand_latencies(
    model_factory: Callable,
    classes: Tuple[str, ...] = ("alu", "mul", "load"),
    max_distance: int = 6,
) -> Dict[str, int]:
    """Measure producer-to-consumer scheduling distances on a model.

    Returns, per producer class, the number of independent filler
    instructions needed between producer and consumer for the loop to hit
    its minimum cycle count — i.e. the operand latency the compiler's
    scheduler should honour.
    """
    from ..isa.arm import assemble

    latencies: Dict[str, int] = {}
    for klass in classes:
        producer = _PRODUCERS[klass]
        cycles_at: List[int] = []
        for distance in range(max_distance + 1):
            fillers = "\n".join(
                f"    add  r{5 + (i % 2)}, r9, #{i}" for i in range(distance)
            )
            source = _PROBE_TEMPLATE.format(producer=producer, fillers=fillers)
            model = model_factory(assemble(source))
            model.run()
            cycles_at.append(model.cycles)
        # Increasing distance adds filler work (cycles rise again once the
        # stall is hidden); the latency is the first distance where adding
        # one more filler no longer removes a stall cycle.
        best = 0
        for distance in range(1, max_distance + 1):
            # a filler is "free" while it hides a stall: cycle count does
            # not grow by the filler's own cost
            if cycles_at[distance] <= cycles_at[distance - 1]:
                best = distance
        latencies[klass] = best
    return latencies
