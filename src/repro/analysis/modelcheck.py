"""Bounded explicit-state model checking of OSM token systems.

Section 6: the declarative model makes it "possible to extract model
properties for formal verification purposes".  The static passes in this
package approximate; this module verifies exactly, for small closed
systems: it explores **every reachable system state under every OSM
scheduling order**, checking the safety invariants the director normally
guarantees only for its one deterministic order:

* *exclusive grant* — a token is never held by two OSMs;
* *buffer hygiene* — an OSM in its initial state holds no tokens;
* *schedule independence* — (optional) the set of reachable abstract
  states is order-insensitive, i.e. the director's ranking choice hides
  no token-safety behaviours;
* *global progress* — no reachable state is stuck: unless the system is
  entirely at home (all OSMs in their initial states), some OSM can
  always transition under some schedule (absence of deadlock).

The checker targets *pure token systems*: specifications whose edges
carry only token primitives (no side-effecting actions, no hardware
modules).  Those are exactly the systems the structural analyses reason
about, and small instances of them (2-4 OSMs) cover the concurrency
interleavings that matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from ..core.osm import MachineSpec, OperationStateMachine

SystemState = Tuple[Tuple[str, FrozenSet[Tuple[str, str]]], ...]


@dataclass
class ModelCheckReport:
    n_states: int = 0
    n_transitions: int = 0
    violations: List[str] = field(default_factory=list)
    #: non-home states in which no OSM can transition under any order
    trapped_states: List[SystemState] = field(default_factory=list)
    truncated: bool = False

    @property
    def safe(self) -> bool:
        return not self.violations and not self.trapped_states and not self.truncated


class TokenSystem:
    """A closed system of OSMs over pure token specifications."""

    def __init__(self, build: Callable[[], Tuple[MachineSpec, list]], n_osms: int):
        """*build* returns ``(spec, managers)`` freshly each call; the
        checker re-instantiates the system to snapshot/restore cheaply."""
        self.build = build
        self.n_osms = n_osms
        spec, managers = build()
        self.spec = spec
        self.managers = managers
        self.osms = [OperationStateMachine(spec) for _ in range(n_osms)]

    # -- abstract state ------------------------------------------------------

    def capture(self) -> SystemState:
        return tuple(
            (
                osm.current.name,
                frozenset((slot, token.name) for slot, token in osm.token_buffer.items()),
            )
            for osm in self.osms
        )

    def restore(self, state: SystemState) -> None:
        token_by_name = {}
        for manager in self.managers:
            for token in _tokens_of(manager):
                token.holder = None
                token_by_name[token.name] = token
        for osm, (state_name, buffer) in zip(self.osms, state):
            osm.current = self.spec.states[state_name]
            osm.token_buffer = {}
            osm._fail_version = -1
            for slot, token_name in buffer:
                token = token_by_name[token_name]
                token.holder = osm
                osm.token_buffer[slot] = token

    def is_home(self, state: SystemState) -> bool:
        return all(name == self.spec.initial.name for name, _ in state)

    # -- transition relation -----------------------------------------------------

    def successors(self, state: SystemState, all_orders: bool) -> Set[SystemState]:
        """System states after one control step, for the chosen schedule
        orders (one per permutation when *all_orders*)."""
        orders = (
            permutations(range(self.n_osms))
            if all_orders
            else [tuple(range(self.n_osms))]
        )
        result: Set[SystemState] = set()
        for order in orders:
            self.restore(state)
            progressed = True
            moved: Set[int] = set()
            # Fig. 3 with restart, generalised to an arbitrary rank order.
            while progressed:
                progressed = False
                for index in order:
                    if index in moved:
                        continue
                    if self.osms[index].try_transition(0) is not None:
                        moved.add(index)
                        progressed = True
                        break
            result.add(self.capture())
        return result


def check(
    build: Callable[[], Tuple[MachineSpec, list]],
    n_osms: int = 2,
    all_orders: bool = True,
    max_states: int = 20_000,
) -> ModelCheckReport:
    """Explore the token system exhaustively and verify the invariants."""
    system = TokenSystem(build, n_osms)
    report = ModelCheckReport()
    initial = system.capture()
    seen: Set[SystemState] = {initial}
    frontier: List[SystemState] = [initial]
    edges: Dict[SystemState, Set[SystemState]] = {}

    while frontier:
        if len(seen) > max_states:
            report.truncated = True
            break
        state = frontier.pop()
        _check_invariants(system, state, report)
        successors = system.successors(state, all_orders)
        edges[state] = successors
        report.n_transitions += len(successors)
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    report.n_states = len(seen)

    # global progress: a non-home state whose only successor (under every
    # schedule) is itself is a deadlocked configuration
    report.trapped_states = [
        state
        for state, successors in edges.items()
        if successors == {state} and not system.is_home(state)
    ]
    return report


def _check_invariants(system: TokenSystem, state: SystemState, report: ModelCheckReport) -> None:
    held: Dict[str, str] = {}
    for index, (state_name, buffer) in enumerate(state):
        if state_name == system.spec.initial.name and buffer:
            report.violations.append(
                f"osm{index} holds {sorted(t for _, t in buffer)} in the initial state"
            )
        for _, token_name in buffer:
            if token_name in held:
                report.violations.append(
                    f"token {token_name} held by osm{index} and {held[token_name]}"
                )
            held[token_name] = f"osm{index}"


def _tokens_of(manager):
    if hasattr(manager, "tokens"):
        return list(manager.tokens)
    if hasattr(manager, "token"):
        return [manager.token]
    if hasattr(manager, "update_tokens"):
        tokens = []
        for pool in manager.update_tokens.values():
            tokens.extend(pool)
        return tokens
    return []
