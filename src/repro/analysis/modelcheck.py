"""Legacy model-checking entry point (compatibility shim).

The prototype checker that lived here — a control-step explorer sweeping
every schedule *permutation* per step — has been replaced by the
:mod:`repro.analysis.check` package: an interleaving-semantics
explicit-state checker with a property framework, shortest
counterexample traces, symmetry canonicalization and partial-order
reduction.  This module keeps the old public surface
(:class:`ModelCheckReport`, :func:`check`) working on top of it:

* ``all_orders=True`` (the old exhaustive mode) maps to the **naive**
  full-interleaving exploration, which covers every director schedule;
* ``all_orders=False`` (the old single-order mode) maps to the
  **reduced** exploration (POR + symmetry), which explores a subset of
  the interleavings while preserving the verdicts;
* token-safety violations that the OSM layer used to raise out of the
  checker as :class:`~repro.core.osm.TokenError` are now *reported* as
  violations with counterexample traces instead.

New code should call :func:`repro.analysis.check.check_system` (or
``check_spec`` / ``check_model``) directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..core.osm import MachineSpec
from .check import check_system
from .check.system import SystemState


@dataclass
class ModelCheckReport:
    n_states: int = 0
    n_transitions: int = 0
    violations: List[str] = field(default_factory=list)
    #: non-home states in which no OSM can transition under any order
    trapped_states: List[SystemState] = field(default_factory=list)
    truncated: bool = False

    @property
    def safe(self) -> bool:
        return not self.violations and not self.trapped_states and not self.truncated


def check(
    build: Callable[[], Tuple[MachineSpec, list]],
    n_osms: int = 2,
    all_orders: bool = True,
    max_states: int = 20_000,
) -> ModelCheckReport:
    """Explore the token system exhaustively and verify the invariants."""
    spec, managers = build()
    report = check_system(
        spec,
        managers,
        n_osms=n_osms,
        reduction=not all_orders,
        max_states=max_states,
    )
    legacy = ModelCheckReport(
        n_states=report.n_states,
        n_transitions=report.n_transitions,
        truncated=report.truncated,
    )
    for finding in report.findings:
        if finding.diagnostic.code == "CHK004":
            if finding.state is not None:
                legacy.trapped_states.append(finding.state)
        else:
            legacy.violations.append(finding.diagnostic.message)
    return legacy
