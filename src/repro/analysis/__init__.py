"""Formal analysis and compiler-information extraction (Section 6)."""

from . import asm_export, check, compiler_info, effects, lint, modelcheck
from .asm_export import AsmRule, export_asm, render_asm
from .check import (
    CheckReport,
    Finding,
    Trace,
    check_model,
    check_spec,
    check_system,
    default_properties,
    purify,
)
from .compiler_info import canonical_path, operand_latencies, reservation_table
from .effects import CompilabilityReport, Footprint, compilability_report, effects_spec
from .lint import Diagnostic, LintReport, Severity, lint_spec
from .lint.graph import (
    DeadlockReport,
    ReachabilityReport,
    analyze_deadlock,
    analyze_reachability,
)
from .modelcheck import ModelCheckReport, check as model_check
from .registry import available_specs, build_spec, register_spec

__all__ = [
    "AsmRule",
    "CheckReport",
    "CompilabilityReport",
    "DeadlockReport",
    "Diagnostic",
    "Finding",
    "Footprint",
    "LintReport",
    "ModelCheckReport",
    "ReachabilityReport",
    "Severity",
    "Trace",
    "analyze_deadlock",
    "analyze_reachability",
    "asm_export",
    "available_specs",
    "build_spec",
    "canonical_path",
    "check",
    "check_model",
    "check_spec",
    "check_system",
    "compilability_report",
    "compiler_info",
    "default_properties",
    "effects",
    "effects_spec",
    "export_asm",
    "lint",
    "lint_spec",
    "model_check",
    "modelcheck",
    "operand_latencies",
    "purify",
    "register_spec",
    "render_asm",
    "reservation_table",
]
