"""Formal analysis and compiler-information extraction (Section 6)."""

from . import asm_export, compiler_info, deadlock, lint, modelcheck, reachability
from .asm_export import AsmRule, export_asm, render_asm
from .compiler_info import canonical_path, operand_latencies, reservation_table
from .deadlock import DeadlockReport
from .lint import Diagnostic, LintReport, Severity, lint_spec
from .modelcheck import ModelCheckReport, check as model_check
from .reachability import ReachabilityReport

__all__ = [
    "AsmRule",
    "DeadlockReport",
    "Diagnostic",
    "LintReport",
    "ModelCheckReport",
    "ReachabilityReport",
    "Severity",
    "asm_export",
    "canonical_path",
    "compiler_info",
    "deadlock",
    "lint",
    "lint_spec",
    "model_check",
    "modelcheck",
    "export_asm",
    "operand_latencies",
    "render_asm",
    "reachability",
    "reservation_table",
]
