"""Spec-graph analyses shared by the checker stack: reachability and
hold-allocate deadlock.

Home of the implementations that historically lived in the standalone
``repro.analysis.reachability`` and ``repro.analysis.deadlock`` modules
(the deprecation shims have since been removed).  The lint passes OSM006
(reachability) and OSM008 (resource cycles) consume these via
:class:`~.engine.LintContext`, and the explicit-state checker cross-
validates their verdicts; keeping them inside the lint package makes
the registry/checker stack the single owner of spec-graph facts.

Reachability (Section 6: *"it is possible to extract model properties
for formal verification purposes"*):

* every state must be reachable from the initial state;
* every state must be co-reachable (some path leads back to I),
  otherwise operations can be permanently absorbed;
* a reachable state with no outgoing edges traps operations;
* edges out of unreachable states are dead.

Deadlock (Section 3.4: *"scheduling deadlock may occur in the model if
cyclic resource dependency involving two or more OSMs exists … such
cyclic dependency implies a cyclic pipeline"*): walking a spec's edges,
manager B depends on manager A when some edge allocates from B while a
token of A is still held along the path; a cycle in this hold-allocate
graph is a potential deadlock the director would abort on at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ...core.osm import MachineSpec
from ...core.primitives import Allocate, AllocateMany, Discard, Release, ReleaseMany

__all__ = [
    "DeadlockReport",
    "ReachabilityReport",
    "analyze_deadlock",
    "analyze_reachability",
]


@dataclass
class ReachabilityReport:
    reachable: Set[str] = field(default_factory=set)
    unreachable: Set[str] = field(default_factory=set)
    #: states from which the initial state cannot be reached again
    non_returning: Set[str] = field(default_factory=set)
    trapping: Set[str] = field(default_factory=set)
    dead_edges: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.unreachable or self.non_returning or self.trapping)


def analyze_reachability(spec: MachineSpec) -> ReachabilityReport:
    """Run the full reachability/liveness analysis."""
    report = ReachabilityReport()
    if spec.initial is None:
        raise ValueError(f"{spec.name}: no initial state")

    # forward reachability
    frontier = [spec.initial]
    report.reachable = {spec.initial.name}
    while frontier:
        state = frontier.pop()
        for edge in state.out_edges:
            if edge.dst.name not in report.reachable:
                report.reachable.add(edge.dst.name)
                frontier.append(edge.dst)
    report.unreachable = set(spec.states) - report.reachable

    # co-reachability of the initial state (reverse walk)
    predecessors: Dict[str, Set[str]] = {name: set() for name in spec.states}
    for edge in spec.edges:
        predecessors[edge.dst.name].add(edge.src.name)
    returning = {spec.initial.name}
    frontier2 = [spec.initial.name]
    while frontier2:
        name = frontier2.pop()
        for pred in predecessors[name]:
            if pred not in returning:
                returning.add(pred)
                frontier2.append(pred)
    report.non_returning = report.reachable - returning

    # trapping states and dead edges
    for name, state in spec.states.items():
        if name in report.reachable and not state.out_edges:
            report.trapping.add(name)
    for edge in spec.edges:
        if edge.src.name in report.unreachable:
            report.dead_edges.append(edge.label)
    return report


@dataclass
class DeadlockReport:
    #: hold-allocate dependencies: (held manager, requested manager)
    dependencies: Set[Tuple[str, str]] = field(default_factory=set)
    cycles: List[List[str]] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        return not self.cycles


def analyze_deadlock(spec: MachineSpec) -> DeadlockReport:
    """Build the hold-allocate graph of *spec* and find its cycles."""
    report = DeadlockReport()
    if spec.initial is None:
        raise ValueError(f"{spec.name}: no initial state")

    # Depth-first exploration of (state, frozenset of (slot, manager)
    # pairs): the slot-to-manager binding is part of the abstract token
    # buffer, so a slot name like "unit" reused by several parallel edges
    # (one per function unit) resolves correctly along each path.
    start = (spec.initial.name, frozenset())
    seen = {start}
    frontier = [start]
    while frontier:
        state_name, held = frontier.pop()
        state = spec.states[state_name]
        for edge in state.out_edges:
            new_held = dict(held)
            for primitive in edge.condition.primitives:
                if isinstance(primitive, (Allocate, AllocateMany)):
                    manager = primitive.manager.name
                    for holder in dict(held).values():
                        report.dependencies.add((holder, manager))
                    new_held[primitive.slot] = manager
                elif isinstance(primitive, Release):
                    new_held.pop(primitive.slot, None)
                elif isinstance(primitive, ReleaseMany):
                    for slot in [s for s in new_held if s.startswith(primitive.prefix)]:
                        new_held.pop(slot)
                elif isinstance(primitive, Discard):
                    if primitive.slot is None:
                        new_held.clear()
                    else:
                        new_held.pop(primitive.slot, None)
            successor = (edge.dst.name, frozenset(new_held.items()))
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)

    report.cycles = _find_cycles(report.dependencies)
    return report


def _find_cycles(dependencies: Set[Tuple[str, str]]) -> List[List[str]]:
    graph: Dict[str, List[str]] = {}
    for src, dst in dependencies:
        graph.setdefault(src, []).append(dst)
        graph.setdefault(dst, [])
    cycles: List[List[str]] = []
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}

    def visit(node: str, path: List[str]) -> None:
        colour[node] = GREY
        path.append(node)
        for succ in graph[node]:
            if colour[succ] == GREY:
                cycle = path[path.index(succ):] + [succ]
                if sorted(cycle[:-1]) not in [sorted(c[:-1]) for c in cycles]:
                    cycles.append(cycle)
            elif colour[succ] == WHITE:
                visit(succ, path)
        path.pop()
        colour[node] = BLACK

    for node in list(graph):
        if colour[node] == WHITE:
            visit(node, [])
    return cycles
