"""Compatibility shim — the spec registry moved to
:mod:`repro.analysis.registry` so the lint passes and the model checker
share one catalogue of analyzable specifications.
"""

from ..registry import (
    _REGISTRY,
    SpecBuilder,
    available_specs,
    build_spec,
    register_spec,
)

__all__ = ["SpecBuilder", "_REGISTRY", "available_specs", "build_spec", "register_spec"]
