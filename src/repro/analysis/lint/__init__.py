"""``osmlint`` — multi-pass static analysis of OSM machine specifications.

Section 6 of the paper claims the OSM model is *analyzable*: every edge
is a guarded conjunction of token transactions, so model properties can
be extracted and checked without running the simulator.  This package is
that claim turned into a lint gate: a shared diagnostics engine
(:mod:`.diagnostics`), an abstract interpretation of the token buffer
along all state-graph paths (:mod:`.buffer`), and a set of rules
(:mod:`.passes`, codes ``OSM001``–``OSM008``) that catch model-author
mistakes — leaked tokens, double allocations, shadowed or ambiguous
edges, statically infeasible allocations, unreachable states and cyclic
resource dependencies — at model-build time rather than at cycle 10M of
a MediaBench run.

Entry points:

>>> from repro.analysis.lint import lint_spec
>>> report = lint_spec(model.spec)
>>> report.ok          # no unsuppressed error-severity findings
>>> print(report.render_text())

or from the command line: ``python -m repro lint <model> [--json]``.
"""

from .buffer import BufferAnalysis, analyze_buffers
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import DEFAULT_PASSES, LintContext, LintPass, lint_spec
from .registry import available_specs, build_spec, register_spec

__all__ = [
    "BufferAnalysis",
    "DEFAULT_PASSES",
    "Diagnostic",
    "LintContext",
    "LintPass",
    "LintReport",
    "Severity",
    "analyze_buffers",
    "available_specs",
    "build_spec",
    "lint_spec",
    "register_spec",
]
