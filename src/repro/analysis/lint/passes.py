"""The bundled lint rules, codes ``OSM001``–``OSM008``.

Each rule is a :class:`~.engine.LintPass`; see ``docs/static-analysis.md``
for the paper grounding, severities and worked examples of every code.

========  ==================  ==========================================
code      rule                finds
========  ==================  ==========================================
OSM001    token-leak          tokens still held on an edge back to I
OSM002    vacuous-release     release/discard of a never-allocated slot
OSM003    double-allocate     allocate into a slot already occupied
OSM004    ambiguous-siblings  same-priority sibling edges that are not
                              statically distinguishable
OSM005    shadowed-edge       an unconditional higher-priority sibling
                              makes the edge dead
OSM006    reachability        unreachable / trapping / non-returning
                              states, dead edges
OSM007    over-capacity       definite allocation demand exceeding the
                              manager's static capacity
OSM008    resource-cycle      cyclic hold-allocate dependencies
                              (potential scheduling deadlock)
========  ==================  ==========================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from ...core.osm import Edge
from ...core.primitives import (
    Allocate,
    AllocateMany,
    Discard,
    Guard,
    Inquire,
    Release,
    ReleaseMany,
)
from ..diagnostics import Diagnostic, Severity
from .engine import LintContext, LintPass


class TokenLeakPass(LintPass):
    """OSM001: an edge returning to the initial state leaves tokens in
    the buffer.

    The static complement of the dynamic invariant enforced by
    ``OperationStateMachine.try_transition`` ("Back to I: token buffer
    must be empty") and checked by ``analysis.modelcheck``'s buffer
    hygiene: here the leak is caught without running anything.  A slot
    that is *definitely* held leaks on every execution (error); a slot
    that is only *possibly* held (conditional or dynamic allocation)
    leaks on some executions (warning).
    """

    code = "OSM001"
    rule = "token-leak"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for leak in ctx.buffers.leaks.values():
            if leak.must_slots:
                yield self.diag(
                    ctx,
                    f"returns to initial state still holding "
                    f"{sorted(leak.must_slots)} — release or discard them "
                    f"on this edge",
                    severity=Severity.ERROR,
                    edge=leak.edge,
                )
            may_only = leak.may_slots - leak.must_slots
            if may_only:
                yield self.diag(
                    ctx,
                    f"may return to initial state holding {sorted(may_only)} "
                    f"(conditionally allocated and never released)",
                    severity=Severity.WARNING,
                    edge=leak.edge,
                )


class VacuousReleasePass(LintPass):
    """OSM002: a ``Release``/``Discard`` names a slot that no path ever
    allocates.

    ``Release`` of an empty slot vacuously succeeds at run time (the
    optional-resource idiom), so a never-allocated target is silent —
    and almost always a typo in the slot name or a forgotten allocation.
    Reported only when the slot is unheld in *every* configuration
    reaching the edge; a slot held on some paths is the intended idiom.
    """

    code = "OSM002"
    rule = "vacuous-release"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for target in ctx.buffers.release_targets.values():
            if target.held_somewhere:
                continue
            noun = {
                "release": "release of slot",
                "release-many": "release of slot family",
                "discard": "discard of slot",
            }[target.kind]
            yield self.diag(
                ctx,
                f"{noun} {target.target!r} which is never allocated on any "
                f"path to this edge — misspelled slot or missing Allocate?",
                severity=Severity.WARNING,
                edge=target.edge,
            )


class DoubleAllocatePass(LintPass):
    """OSM003: an ``Allocate`` targets a slot the buffer already holds.

    The commit would silently overwrite the held token's buffer entry,
    losing the only reference through which it can ever be released —
    a guaranteed leak of the earlier token.  Definite-over-definite is
    an error; combinations involving conditional grants are warnings.
    """

    code = "OSM003"
    rule = "double-allocate"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for event in ctx.buffers.double_allocates:
            severity = Severity.ERROR if event.definite else Severity.WARNING
            yield self.diag(
                ctx,
                f"allocates into slot {event.slot!r} while it already holds "
                f"a {event.holder_manager} token — the earlier token would "
                f"be orphaned",
                severity=severity,
                edge=event.edge,
            )


def _fallible_signature(edge: Edge) -> FrozenSet[Tuple]:
    """The set of statically distinguishable, *fallible* atoms of an
    edge's condition.

    Guards and inquiries (and allocations) are what make one sibling
    edge fire where another does not; ``Discard`` never fails and so
    cannot distinguish anything.  Callable identifiers are compared by
    object identity: two edges inquiring via the same callable are
    indistinguishable, via different callables distinguishable.
    """
    atoms = set()
    for primitive in edge.condition.primitives:
        if isinstance(primitive, Guard):
            atoms.add(("guard", primitive.label))
        elif isinstance(primitive, Inquire):
            atoms.add(("inquire", primitive.manager.name, _ident_key(primitive.ident)))
        elif isinstance(primitive, Allocate):
            atoms.add(("allocate", primitive.manager.name, primitive.slot,
                       _ident_key(primitive.ident)))
        elif isinstance(primitive, AllocateMany):
            atoms.add(("allocate-many", primitive.manager.name, primitive.slot,
                       _ident_key(primitive.idents)))
        elif isinstance(primitive, Release):
            atoms.add(("release", primitive.slot))
        elif isinstance(primitive, ReleaseMany):
            atoms.add(("release-many", primitive.prefix))
        elif isinstance(primitive, Discard):
            pass  # always succeeds: no discriminating power
        else:
            # Model-specific predicate primitives (e.g. tag guards):
            # distinguishable iff their reprs differ.
            atoms.add((getattr(primitive, "kind", "primitive"), repr(primitive)))
    return frozenset(atoms)


def _ident_key(ident) -> str:
    if callable(ident):
        return f"callable:{id(ident)}"
    return f"value:{ident!r}"


class AmbiguousSiblingsPass(LintPass):
    """OSM004: same-priority sibling edges that are not statically
    distinguishable.

    Disjunction in the OSM formalism is parallel edges with static
    priorities (Section 3.3); within one priority the declaration order
    silently breaks ties.  When one sibling's fallible condition atoms
    are a subset of another's, every situation enabling the stronger
    edge also enables the weaker one, and which fires is decided by
    declaration order alone — almost never what the author meant.
    Edges distinguished by distinct guards/inquiries (the routing idiom
    of the bundled superscalar and multithreaded models) are disjoint
    by construction and not reported.
    """

    code = "OSM004"
    rule = "ambiguous-siblings"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for state in ctx.spec.states.values():
            by_priority: Dict[int, List[Edge]] = {}
            for edge in state.out_edges:
                by_priority.setdefault(edge.priority, []).append(edge)
            for priority, group in by_priority.items():
                if len(group) < 2:
                    continue
                signatures = [(edge, _fallible_signature(edge)) for edge in group]
                for i, (edge_a, sig_a) in enumerate(signatures):
                    for edge_b, sig_b in signatures[i + 1:]:
                        if sig_a <= sig_b or sig_b <= sig_a:
                            yield self.diag(
                                ctx,
                                f"not statically distinguishable from "
                                f"same-priority sibling {edge_b.qualname!r} "
                                f"(priority {priority}) — declaration order "
                                f"silently decides which fires; add a guard "
                                f"or distinct priorities",
                                severity=Severity.WARNING,
                                edge=edge_a,
                            )


def _is_unconditional(edge: Edge) -> bool:
    """True when no primitive of the edge's condition can fail."""
    return all(
        isinstance(p, Discard) for p in edge.condition.primitives
    )


class ShadowedEdgePass(LintPass):
    """OSM005: a sibling edge that can never fire because an
    unconditional edge of higher effective priority always wins.

    ``try_transition`` probes outgoing edges in static-priority order
    (declaration order breaking ties) and takes the first satisfied
    one; an edge whose condition cannot fail therefore makes every
    later sibling dead code.
    """

    code = "OSM005"
    rule = "shadowed-edge"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for state in ctx.spec.states.values():
            blocker = None
            # out_edges are already sorted: priority desc, then
            # declaration order — exactly the probe order.
            for edge in state.out_edges:
                if blocker is not None:
                    yield self.diag(
                        ctx,
                        f"dead edge: unconditionally shadowed by "
                        f"{blocker.qualname!r} (priority {blocker.priority}, "
                        f"condition can never fail)",
                        severity=Severity.ERROR,
                        edge=edge,
                    )
                elif _is_unconditional(edge):
                    blocker = edge


class ReachabilityPass(LintPass):
    """OSM006: unreachable states, trapping states, states that cannot
    return to I, and edges out of unreachable states.

    Rehomes the retired ``repro.analysis.reachability`` module as a lint rule so the
    graph-liveness findings carry stable codes and severities alongside
    the token-lifecycle rules.
    """

    code = "OSM006"
    rule = "reachability"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        report = ctx.reachability
        for name in sorted(report.unreachable):
            yield self.diag(
                ctx,
                f"state {name!r} is unreachable from the initial state",
                severity=Severity.ERROR,
                state=name,
            )
        for name in sorted(report.trapping):
            yield self.diag(
                ctx,
                f"state {name!r} has no outgoing edges: operations entering "
                f"it are trapped forever",
                severity=Severity.ERROR,
                state=name,
            )
        for name in sorted(report.non_returning - report.trapping):
            yield self.diag(
                ctx,
                f"no path from state {name!r} back to the initial state: "
                f"operations can be permanently absorbed",
                severity=Severity.ERROR,
                state=name,
            )
        for edge in ctx.spec.edges:
            if edge.src.name in report.unreachable:
                yield self.diag(
                    ctx,
                    "dead edge: its source state is unreachable",
                    severity=Severity.WARNING,
                    edge=edge,
                )


class CapacityPass(LintPass):
    """OSM007: an allocation whose definite demand exceeds the manager's
    static capacity.

    When one operation must simultaneously hold more tokens of a
    manager than the manager owns, the allocating edge can never fire —
    the operation stalls there forever.  Uses the read-only
    ``TokenManager.capacity`` introspection hook (``None`` = unbounded
    or per-identifier, skipped).
    """

    code = "OSM007"
    rule = "over-capacity"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for event in ctx.buffers.over_capacity:
            yield self.diag(
                ctx,
                f"edge needs {event.demand} simultaneous {event.manager} "
                f"tokens but the manager's capacity is {event.capacity} — "
                f"this edge can never fire",
                severity=Severity.ERROR,
                edge=event.edge,
            )


class ResourceCyclePass(LintPass):
    """OSM008: cyclic hold-allocate resource dependencies.

    Section 3.4: cyclic resource dependency between managers implies a
    cyclic pipeline, where scheduling deadlock may occur at run time.
    Rehomes the retired ``repro.analysis.deadlock`` module as a lint rule; a cycle is a
    warning (some cyclic pipelines are deliberate and resolved by
    manager policy), promote per-model via CI if desired.
    """

    code = "OSM008"
    rule = "resource-cycle"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for cycle in ctx.deadlock.cycles:
            yield self.diag(
                ctx,
                f"cyclic hold-allocate dependency {' -> '.join(cycle)} — "
                f"potential scheduling deadlock (cyclic pipeline)",
                severity=Severity.WARNING,
            )
