"""Lint engine: pass protocol, shared context, suppression, driver.

A lint pass is a small object with a stable ``code`` (``OSM001``…), a
``rule`` slug and a :meth:`LintPass.run` generator over one
:class:`~repro.core.MachineSpec`.  Passes share a :class:`LintContext`
that lazily computes (once) the facts several passes need: the abstract
token-buffer exploration (:func:`.buffer.analyze_buffers`), the
reachability report and the hold-allocate dependency graph.

Suppression is resolved here: a diagnostic anchored to an edge whose
``lint_allow`` names the rule code — or whose spec carries the code in
``spec.lint_allow`` — is kept in the report but marked ``suppressed``
and excluded from the pass/fail verdict.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from ...core.osm import Edge, MachineSpec
from ..diagnostics import Diagnostic, LintReport, Severity


class LintContext:
    """Per-run shared facts, computed lazily and at most once."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._buffers = None
        self._reachability = None
        self._deadlock = None

    @property
    def buffers(self):
        if self._buffers is None:
            from .buffer import analyze_buffers

            self._buffers = analyze_buffers(self.spec)
        return self._buffers

    @property
    def reachability(self):
        if self._reachability is None:
            from .graph import analyze_reachability

            self._reachability = analyze_reachability(self.spec)
        return self._reachability

    @property
    def deadlock(self):
        if self._deadlock is None:
            from .graph import analyze_deadlock

            self._deadlock = analyze_deadlock(self.spec)
        return self._deadlock


class LintPass:
    """Base class of all lint rules."""

    #: stable rule code, e.g. "OSM001"
    code: str = "OSM000"
    #: short rule slug, e.g. "token-leak"
    rule: str = "abstract"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    # -- diagnostic constructors ------------------------------------------

    def diag(
        self,
        ctx: LintContext,
        message: str,
        severity: Severity = Severity.ERROR,
        state: Optional[str] = None,
        edge: Optional[Edge] = None,
    ) -> Diagnostic:
        """Build a diagnostic located in *ctx*'s spec; an edge location
        implies its source-state location unless overridden."""
        if edge is not None and state is None:
            state = edge.src.name
        return Diagnostic(
            code=self.code,
            rule=self.rule,
            severity=severity,
            spec=ctx.spec.name,
            message=message,
            state=state,
            edge=edge.qualname if edge is not None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.code})"


def default_passes() -> List[LintPass]:
    """Fresh instances of the bundled rules, in code order."""
    from .passes import (
        AmbiguousSiblingsPass,
        CapacityPass,
        DoubleAllocatePass,
        ReachabilityPass,
        ResourceCyclePass,
        ShadowedEdgePass,
        TokenLeakPass,
        VacuousReleasePass,
    )

    return [
        TokenLeakPass(),
        VacuousReleasePass(),
        DoubleAllocatePass(),
        AmbiguousSiblingsPass(),
        ShadowedEdgePass(),
        ReachabilityPass(),
        CapacityPass(),
        ResourceCyclePass(),
    ]


#: code -> pass class mapping of the bundled rules (for --rules filters)
DEFAULT_PASSES = {p.code: type(p) for p in default_passes()}


def lint_spec(
    spec: MachineSpec,
    passes: Optional[Sequence[LintPass]] = None,
    codes: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the lint passes over *spec* and return the report.

    Parameters
    ----------
    passes:
        Pass instances to run; defaults to the bundled OSM001–OSM008 set.
    codes:
        When given, restrict the default set to these rule codes.
    """
    if passes is None:
        passes = default_passes()
    if codes is not None:
        wanted = set(codes)
        unknown = wanted - {p.code for p in passes}
        if unknown:
            raise ValueError(f"unknown lint rule code(s): {sorted(unknown)}")
        passes = [p for p in passes if p.code in wanted]

    ctx = LintContext(spec)
    report = LintReport(spec=spec.name, tool="lint")
    spec_allow = set(getattr(spec, "lint_allow", ()))
    edge_allow = {edge.qualname: set(edge.lint_allow) for edge in spec.edges}
    for lint_pass in passes:
        report.passes_run.append(lint_pass.code)
        for diagnostic in lint_pass.run(ctx):
            if diagnostic.code in spec_allow:
                diagnostic.suppressed = True
            elif diagnostic.edge is not None and diagnostic.code in edge_allow.get(
                diagnostic.edge, ()
            ):
                diagnostic.suppressed = True
            report.diagnostics.append(diagnostic)
    report.sort()
    return report
