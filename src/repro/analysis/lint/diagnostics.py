"""Compatibility shim: the diagnostics engine moved up a level.

The :class:`Diagnostic`/:class:`Report` machinery started life inside
osmlint but is now shared by every analysis front end (lint, check,
audit); import it from :mod:`repro.analysis.diagnostics`.
"""

from __future__ import annotations

from ..diagnostics import (  # noqa: F401
    SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    Report,
    Severity,
)

__all__ = ["SCHEMA_VERSION", "Diagnostic", "LintReport", "Report", "Severity"]
