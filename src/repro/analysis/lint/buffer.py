"""Abstract interpretation of the OSM token buffer along all paths.

The lint passes that reason about token lifecycle (leaks, double
allocations, vacuous releases, static capacity) all need the same fact:
*which slots can the token buffer hold when an edge is probed?*  This
module computes it once per lint run by exploring the state graph over
an abstract buffer domain and recording the events the passes consume.

Abstract domain
---------------
The buffer is a mapping ``slot -> (manager name, definite)``:

* ``definite=True`` (*must* hold): the slot was filled by an
  :class:`~repro.core.primitives.Allocate` with a static identifier —
  every concrete execution reaching this configuration holds the token.
* ``definite=False`` (*may* hold): the slot was filled by an ``Allocate``
  with a callable identifier (which may resolve to ``None`` and skip the
  grant — the "operation does not need this resource" idiom) or by an
  :class:`~repro.core.primitives.AllocateMany` (dynamic count, possibly
  zero).  ``AllocateMany`` families are summarised by a single
  ``"<prefix>*"`` entry.

The walk mirrors :func:`repro.analysis.lint.graph.analyze_deadlock`'s exploration
of ``(state, buffer)`` configurations but tracks definiteness and emits
lifecycle events instead of a dependency graph.  Guards and inquiries
never change the buffer, and every edge is explored from every
configuration of its source state (guards are treated as opaque), so
the result over-approximates the reachable concrete buffers — sound for
"may" facts; the passes only report "must" facts when they hold in
*every* configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ...core.osm import Edge, MachineSpec
from ...core.primitives import Allocate, AllocateMany, Discard, Release, ReleaseMany

#: one abstract buffer entry: slot -> (manager name, definite)
BufferConfig = FrozenSet[Tuple[str, Tuple[str, bool]]]


@dataclass
class DoubleAllocate:
    """An ``Allocate`` into a slot some path already holds."""

    edge: Edge
    slot: str
    holder_manager: str     #: manager of the token already in the slot
    definite: bool          #: both the hold and the new grant are definite


@dataclass
class ReleaseTarget:
    """Aggregate view of one release/discard target on one edge."""

    edge: Edge
    kind: str               #: "release" | "release-many" | "discard"
    target: str             #: slot (or prefix for release-many)
    held_somewhere: bool = False   #: held in at least one configuration


@dataclass
class Leak:
    """Slots still held when an edge returns to the initial state."""

    edge: Edge
    must_slots: Set[str] = field(default_factory=set)
    may_slots: Set[str] = field(default_factory=set)


@dataclass
class OverCapacity:
    """An ``Allocate`` whose definite demand exceeds the manager's
    static capacity — the edge can never fire."""

    edge: Edge
    manager: str
    demand: int
    capacity: int


@dataclass
class BufferAnalysis:
    """Everything the token-lifecycle passes need, from one walk."""

    #: edge.index -> abstract buffers observed when the edge is probed
    edge_buffers: Dict[int, List[Dict[str, Tuple[str, bool]]]] = field(default_factory=dict)
    double_allocates: List[DoubleAllocate] = field(default_factory=list)
    release_targets: Dict[Tuple[int, str, str], ReleaseTarget] = field(default_factory=dict)
    leaks: Dict[int, Leak] = field(default_factory=dict)
    over_capacity: List[OverCapacity] = field(default_factory=list)
    n_configs: int = 0
    truncated: bool = False


def _family_key(slot: str) -> str:
    """The summary key of an ``AllocateMany`` family."""
    return slot + "*"


def _slot_held(buffer: Dict[str, Tuple[str, bool]], slot: str) -> bool:
    """Whether *slot* may be occupied: exact entry, or it falls inside an
    ``AllocateMany`` family whose prefix it starts with."""
    if slot in buffer:
        return True
    return any(key.endswith("*") and slot.startswith(key[:-1]) for key in buffer)


def analyze_buffers(spec: MachineSpec, max_configs: int = 20_000) -> BufferAnalysis:
    """Explore every ``(state, abstract buffer)`` configuration of *spec*."""
    if spec.initial is None:
        raise ValueError(f"{spec.name}: no initial state")
    analysis = BufferAnalysis()
    start: Tuple[str, BufferConfig] = (spec.initial.name, frozenset())
    seen: Set[Tuple[str, BufferConfig]] = {start}
    frontier: List[Tuple[str, BufferConfig]] = [start]

    # A DoubleAllocate/OverCapacity event is recorded once per
    # (edge, slot/manager) — the first configuration exhibiting it wins.
    seen_double: Set[Tuple[int, str]] = set()
    seen_over: Set[Tuple[int, str]] = set()

    while frontier:
        if len(seen) > max_configs:
            analysis.truncated = True
            break
        state_name, config = frontier.pop()
        state = spec.states[state_name]
        for edge in state.out_edges:
            buffer: Dict[str, Tuple[str, bool]] = dict(config)
            analysis.edge_buffers.setdefault(edge.index, []).append(dict(buffer))
            _apply_edge(edge, buffer, analysis, seen_double, seen_over)
            if edge.dst.is_initial and buffer:
                leak = analysis.leaks.setdefault(edge.index, Leak(edge))
                for slot, (_, definite) in buffer.items():
                    (leak.must_slots if definite else leak.may_slots).add(slot)
                # The dynamic semantics make a non-empty buffer at I a hard
                # error (the OSM raises); clamp to empty so one leak does
                # not cascade into bogus downstream findings.
                buffer.clear()
            successor = (edge.dst.name, frozenset(buffer.items()))
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)

    analysis.n_configs = len(seen)
    return analysis


def _apply_edge(
    edge: Edge,
    buffer: Dict[str, Tuple[str, bool]],
    analysis: BufferAnalysis,
    seen_double: Set[Tuple[int, str]],
    seen_over: Set[Tuple[int, str]],
) -> None:
    """Apply *edge*'s primitives (in declaration order) to *buffer*,
    recording lifecycle events as they surface."""
    for primitive in edge.condition.primitives:
        if isinstance(primitive, Allocate):
            slot = primitive.slot
            definite = not callable(primitive.ident)
            if slot in buffer and (edge.index, slot) not in seen_double:
                seen_double.add((edge.index, slot))
                held_manager, held_definite = buffer[slot]
                analysis.double_allocates.append(
                    DoubleAllocate(edge, slot, held_manager,
                                   definite=definite and held_definite)
                )
            buffer[slot] = (primitive.manager.name, definite)
            _check_capacity(edge, primitive, buffer, analysis, seen_over)
        elif isinstance(primitive, AllocateMany):
            buffer[_family_key(primitive.slot)] = (primitive.manager.name, False)
        elif isinstance(primitive, Release):
            target = _release_target(analysis, edge, "release", primitive.slot)
            target.held_somewhere |= _slot_held(buffer, primitive.slot)
            buffer.pop(primitive.slot, None)
        elif isinstance(primitive, ReleaseMany):
            matching = [s for s in buffer if s.startswith(primitive.prefix)]
            target = _release_target(analysis, edge, "release-many", primitive.prefix)
            target.held_somewhere |= bool(matching)
            for slot in matching:
                buffer.pop(slot)
        elif isinstance(primitive, Discard):
            if primitive.slot is None:
                buffer.clear()
            else:
                target = _release_target(analysis, edge, "discard", primitive.slot)
                target.held_somewhere |= _slot_held(buffer, primitive.slot)
                buffer.pop(primitive.slot, None)
        # Inquire / Guard / model-specific predicates: no buffer effect.


def _release_target(
    analysis: BufferAnalysis, edge: Edge, kind: str, target: str
) -> ReleaseTarget:
    key = (edge.index, kind, target)
    if key not in analysis.release_targets:
        analysis.release_targets[key] = ReleaseTarget(edge, kind, target)
    return analysis.release_targets[key]


def _check_capacity(
    edge: Edge,
    primitive: Allocate,
    buffer: Dict[str, Tuple[str, bool]],
    analysis: BufferAnalysis,
    seen_over: Set[Tuple[int, str]],
) -> None:
    capacity: Optional[int] = getattr(primitive.manager, "capacity", None)
    if capacity is None:
        return
    manager = primitive.manager.name
    demand = sum(
        1 for held_manager, definite in buffer.values()
        if held_manager == manager and definite
    )
    # A non-definite grant adds no guaranteed demand; only definite holds
    # make the edge statically infeasible.
    if demand > capacity and (edge.index, manager) not in seen_over:
        seen_over.add((edge.index, manager))
        analysis.over_capacity.append(OverCapacity(edge, manager, demand, capacity))
