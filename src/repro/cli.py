"""Command-line interface: ``python -m repro <command>``.

Gives the framework a downstream-usable front end:

* ``run``      — assemble a program and run it on a model or ISS,
                 optionally with a pipeline trace
* ``asm``      — assemble to a hex/word listing
* ``analyze``  — umbrella: run all six analysis tools (lint, check,
                 audit, effects, certify, and adlcheck for ADL-backed
                 specs) over model specs and their ISAs, with one
                 merged JSON report for CI
* ``lint``     — static analysis of model specs (rule codes OSM001…;
                 nonzero exit on unsuppressed error findings)
* ``check``    — explicit-state model checking (osmcheck) of model
                 specs via the pure-token abstraction (property codes
                 CHK001…; counterexample traces; nonzero exit on any
                 violated property)
* ``audit``    — cross-layer ISA/model consistency audit (isaaudit):
                 encoding space, encode/decode round-trips, hazard
                 metadata vs. executed semantics, unit routing (rule
                 codes ISA001…; nonzero exit on unsuppressed errors)
* ``effects``  — static effect/purity analysis (effectcheck) of the
                 Python callables hanging off model specs: certifies
                 the fast-path and edge-compiler contracts (rule codes
                 EFF001…; per-model compilability report; nonzero exit
                 on unsuppressed errors)
* ``certify``  — translation validation (transcheck) of generated
                 fast-path code: fused steppers, compiled edge probes,
                 execgen closures and compiled ISS blocks are replayed
                 or diffed against their reference sources (rule codes
                 TRV001…; nonzero exit on unsuppressed errors)
* ``adlcheck`` — source-level semantic analysis (adlcheck) of ADL
                 descriptions, by registered name or file path: rules
                 ADL001–ADL009 over the parsed AST plus the ADL010
                 synthesis closure folding span-remapped lint / check /
                 effects findings back onto description source lines
                 (nonzero exit on unsuppressed errors)
* ``bench``    — quick cycles-per-second measurement of a model
* ``workload`` — emit a bundled workload's assembly source

Examples::

    python -m repro run --model strongarm examples/sum.s
    python -m repro run --model ppc750 --isa ppc --trace prog.s
    python -m repro asm --isa arm prog.s
    python -m repro analyze all --json
    python -m repro lint strongarm ppc750
    python -m repro lint all --json
    python -m repro check pipeline5 --n-osms 3
    python -m repro check all --json
    python -m repro audit arm ppc
    python -m repro audit all --json
    python -m repro effects ppc750
    python -m repro effects all --json
    python -m repro certify arm strongarm
    python -m repro certify all --json
    python -m repro adlcheck adl-pipeline5
    python -m repro adlcheck mydesc.adl --json
    python -m repro adlcheck all --rules ADL001,ADL010
    python -m repro workload gsm_dec --isa ppc
"""

from __future__ import annotations

import argparse
import sys


def _assemble(isa: str, source: str):
    if isa == "arm":
        from .isa.arm import assemble
    elif isa == "ppc":
        from .isa.ppc import assemble
    else:
        raise SystemExit(f"unknown ISA {isa!r} (choose arm or ppc)")
    return assemble(source)


def _build_model(name: str, program, isa: str, fused: bool = True):
    if name == "iss":
        from .iss import ArmInterpreter, PpcInterpreter

        return (ArmInterpreter if isa == "arm" else PpcInterpreter)(program)
    if name == "pipeline5":
        from .models.pipeline5 import Pipeline5Model

        _require_isa(name, isa, "arm")
        return Pipeline5Model(program, fused=fused)
    if name == "strongarm":
        from .models.strongarm import StrongArmModel

        _require_isa(name, isa, "arm")
        return StrongArmModel(program, fused=fused)
    if name == "vliw":
        from .models.vliw import VliwModel

        _require_isa(name, isa, "arm")
        return VliwModel(program)
    if name == "ppc750":
        from .models.ppc750 import Ppc750Model

        _require_isa(name, isa, "ppc")
        return Ppc750Model(program, fused=fused)
    raise SystemExit(
        f"unknown model {name!r} (choose iss, pipeline5, strongarm, vliw, ppc750)"
    )


def _require_isa(model: str, isa: str, expected: str) -> None:
    if isa != expected:
        raise SystemExit(f"model {model!r} targets the {expected} ISA, not {isa!r}")


MODEL_DEFAULT_ISA = {
    "iss": "arm",
    "pipeline5": "arm",
    "strongarm": "arm",
    "vliw": "arm",
    "ppc750": "ppc",
}


def cmd_run(args) -> int:
    source = _read_source(args.file)
    isa = args.isa or MODEL_DEFAULT_ISA.get(args.model, "arm")
    program = _assemble(isa, source)
    model = _build_model(args.model, program, isa)

    if args.model == "iss":
        exit_code = model.run(args.max_cycles)
        print(f"exit={exit_code} instructions={model.steps}")
        output = model.syscalls.output_text
        if output:
            print(f"output: {output!r}")
        return 0

    tracer = None
    if args.trace:
        from .reporting.pipeview import PipelineTracer

        tracer = PipelineTracer(model)
    stats = model.run(args.max_cycles)
    print(f"exit={model.exit_code} cycles={stats.cycles} "
          f"instructions={stats.instructions} IPC={stats.ipc:.3f}")
    output = getattr(model, "output_text", "")
    if output:
        print(f"output: {output!r}")
    if tracer is not None:
        print()
        print(tracer.render(count=args.trace_ops))
    return 0


def cmd_asm(args) -> int:
    source = _read_source(args.file)
    program = _assemble(args.isa, source)
    if args.isa == "arm":
        from .isa.arm import decode
    else:
        from .isa.ppc import decode
    print(f"entry: {program.entry:#x}")
    for address, word in program.text_words():
        text = decode(address, word).text
        print(f"{address:#10x}: {word:08x}  {text}")
    data = program.data
    if data is not None and data.size:
        print(f".data at {data.base:#x}, {data.size} bytes")
    return 0


def cmd_analyze(args) -> int:
    """Umbrella: run all six analysis tools (osmlint, osmcheck,
    isaaudit, effectcheck, transcheck, and adlcheck for specs backed by
    an ADL description) over the named model specs and the ISAs they
    consume; exit 1 if any tool reports a failure.

    JSON mode emits one merged report — per model a section per
    spec-level tool, per ISA the audit and certify sections — so CI can
    archive a single artifact for the whole static-analysis matrix.
    """
    import json

    from .analysis.adl import adlcheck_source, description_source
    from .analysis.adl import available_descriptions as adl_descriptions
    from .analysis.audit import audit_isa, audit_model
    from .analysis.certify import certify_isa, certify_spec
    from .analysis.check import check_model
    from .analysis.effects import compilability_report, effects_spec
    from .analysis.lint import lint_spec
    from .analysis.registry import available_specs, build_spec, spec_isa

    names = list(args.models)
    if "all" in names:
        names = available_specs()
    model_sections = {}
    isa_names = []
    ok = True
    for name in names:
        try:
            spec = build_spec(name)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        isa = spec_isa(name)
        if isa not in isa_names:
            isa_names.append(isa)
        lint = lint_spec(spec)
        lint.spec = name
        check = check_model(name, n_osms=2)
        effects = effects_spec(spec)
        effects.spec = name
        compilability = compilability_report(spec, effects)
        routing = audit_model(name)
        certify = certify_spec(spec)
        certify.spec = name
        reports = (lint, check, effects, routing, certify)
        ok = ok and all(report.ok for report in reports)
        model_sections[name] = {
            "lint": lint.to_dict(),
            "check": check.to_dict(),
            "effects": {**effects.to_dict(),
                        "compilability": compilability.to_dict()},
            "audit": routing.to_dict(),
            "certify": certify.to_dict(),
        }
        # sixth tool: specs synthesized from an ADL description also get
        # the description-level analysis, keyed by the same name
        adlcheck = None
        if name in adl_descriptions():
            adlcheck = adlcheck_source(description_source(name), unit=name)
            ok = ok and adlcheck.ok
            model_sections[name]["adlcheck"] = adlcheck.to_dict()
        if not args.json:
            print(f"== {name} ==")
            for report in (lint, effects, routing, certify):
                print(report.render_text(
                    show_suppressed=args.show_suppressed))
            print(check.render_text())
            if adlcheck is not None:
                print(adlcheck.render_text(
                    show_suppressed=args.show_suppressed))
    isa_sections = {}
    for isa in isa_names:
        audit = audit_isa(isa)
        certify = certify_isa(isa)
        ok = ok and audit.ok and certify.ok
        isa_sections[isa] = {
            "audit": audit.to_dict(),
            "certify": certify.to_dict(),
        }
        if not args.json:
            print(f"== {isa} (ISA) ==")
            print(audit.render_text(show_suppressed=args.show_suppressed))
            print(certify.render_text(show_suppressed=args.show_suppressed))
    if args.json:
        from .analysis.diagnostics import SCHEMA_VERSION

        payload = {
            "tool": "analyze",
            "schema_version": SCHEMA_VERSION,
            "ok": ok,
            "models": model_sections,
            "isas": isa_sections,
        }
        print(json.dumps(payload, indent=2))
    elif ok:
        print("analyze: all tools clean")
    return 0 if ok else 1


def cmd_certify(args) -> int:
    """Translation validation (transcheck) of generated fast-path code;
    exit 1 on any unsuppressed error-severity finding."""
    import json

    from .analysis.certify import (
        DEFAULT_PASSES,
        ISA_CODES,
        SPEC_CODES,
        certify_isa,
        certify_spec,
    )
    from .analysis.audit.targets import available_targets
    from .analysis.registry import available_specs, build_spec

    targets = available_targets()
    specs = available_specs()
    names = list(args.subjects)
    if "all" in names:
        names = targets + specs
    codes = None
    if args.rules:
        codes = {code.strip() for code in args.rules.split(",") if code.strip()}
        unknown = codes - set(DEFAULT_PASSES)
        if unknown:
            raise SystemExit(f"unknown certify rule code(s): {sorted(unknown)}")
    reports = []
    for name in names:
        if name in targets:
            subject_codes = None if codes is None else sorted(codes & set(ISA_CODES))
            report = certify_isa(name, codes=subject_codes)
        elif name in specs:
            subject_codes = None if codes is None else sorted(codes & set(SPEC_CODES))
            spec = build_spec(name)
            report = certify_spec(spec, codes=subject_codes)
            report.spec = name  # key by registry name (spec.name may differ)
        else:
            raise SystemExit(
                f"unknown certify subject {name!r}; ISA targets: "
                f"{', '.join(targets)}; model specs: {', '.join(specs)}"
            )
        reports.append((name, report))
    if args.json:
        from .analysis.diagnostics import SCHEMA_VERSION

        payload = {
            "tool": "certify",
            "schema_version": SCHEMA_VERSION,
            "ok": all(report.ok for _, report in reports),
            "subjects": {name: report.to_dict() for name, report in reports},
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in reports:
            print(report.render_text(show_suppressed=args.show_suppressed))
    return 0 if all(report.ok for _, report in reports) else 1


def cmd_lint(args) -> int:
    """Lint one or more model specifications; exit 1 on any unsuppressed
    error-severity finding."""
    import json

    from .analysis.lint import available_specs, build_spec, lint_spec

    names = list(args.models)
    if "all" in names:
        names = available_specs()
    codes = None
    if args.rules:
        codes = [code.strip() for code in args.rules.split(",") if code.strip()]
    reports = []
    for name in names:
        try:
            spec = build_spec(name)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        try:
            report = lint_spec(spec, codes=codes)
        except ValueError as exc:
            raise SystemExit(str(exc))
        # key the report by its registry name (spec.name may differ)
        report.spec = name
        reports.append((name, report))
    if args.json:
        from .analysis.diagnostics import SCHEMA_VERSION

        payload = {
            "tool": "lint",
            "schema_version": SCHEMA_VERSION,
            "ok": all(report.ok for _, report in reports),
            "models": {name: report.to_dict() for name, report in reports},
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in reports:
            print(report.render_text(show_suppressed=args.show_suppressed))
    return 0 if all(report.ok for _, report in reports) else 1


def cmd_check(args) -> int:
    """Model-check one or more specifications (via the pure-token
    abstraction); exit 1 on any violated property or truncated search."""
    import json

    from .analysis.check import check_model
    from .analysis.registry import available_specs

    names = list(args.models)
    if "all" in names:
        names = available_specs()
    codes = None
    if args.properties:
        codes = [code.strip() for code in args.properties.split(",") if code.strip()]
    reports = []
    for name in names:
        try:
            report = check_model(
                name,
                n_osms=args.n_osms,
                codes=codes,
                reduction=not args.naive,
                max_states=args.max_states,
            )
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        except ValueError as exc:
            raise SystemExit(str(exc))
        reports.append((name, report))
    if args.json:
        from .analysis.diagnostics import SCHEMA_VERSION

        payload = {
            "tool": "check",
            "schema_version": SCHEMA_VERSION,
            "ok": all(report.ok for _, report in reports),
            "models": {name: report.to_dict() for name, report in reports},
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in reports:
            print(report.render_text())
    return 0 if all(report.ok for _, report in reports) else 1


def cmd_audit(args) -> int:
    """Audit ISA encoding/hazard consistency (per-ISA rules ISA001–ISA007)
    and model unit routing (ISA008); exit 1 on any unsuppressed
    error-severity finding."""
    import json

    from .analysis.audit import (
        DEFAULT_PASSES,
        ROUTING_CODE,
        audit_isa,
        audit_model,
        available_targets,
    )
    from .analysis.registry import available_specs

    targets = available_targets()
    specs = available_specs()
    names = list(args.subjects)
    if "all" in names:
        names = targets + specs
    codes = None
    if args.rules:
        codes = {code.strip() for code in args.rules.split(",") if code.strip()}
        unknown = codes - set(DEFAULT_PASSES) - {ROUTING_CODE}
        if unknown:
            raise SystemExit(f"unknown audit rule code(s): {sorted(unknown)}")
    reports = []
    for name in names:
        if name in targets:
            subject_codes = None if codes is None else sorted(codes & set(DEFAULT_PASSES))
            report = audit_isa(name, codes=subject_codes)
        elif name in specs:
            subject_codes = None if codes is None else sorted(codes & {ROUTING_CODE})
            report = audit_model(name, codes=subject_codes)
        else:
            raise SystemExit(
                f"unknown audit subject {name!r}; ISA targets: "
                f"{', '.join(targets)}; model specs: {', '.join(specs)}"
            )
        reports.append((name, report))
    if args.json:
        from .analysis.diagnostics import SCHEMA_VERSION

        payload = {
            "tool": "audit",
            "schema_version": SCHEMA_VERSION,
            "ok": all(report.ok for _, report in reports),
            "subjects": {name: report.to_dict() for name, report in reports},
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in reports:
            print(report.render_text(show_suppressed=args.show_suppressed))
    return 0 if all(report.ok for _, report in reports) else 1


def cmd_effects(args) -> int:
    """Effect/purity analysis (effectcheck) of one or more model specs;
    exit 1 on any unsuppressed error-severity finding."""
    import json

    from .analysis.effects import (
        build_spec,
        compilability_report,
        effects_spec,
    )
    from .analysis.registry import available_specs

    names = list(args.models)
    if "all" in names:
        names = available_specs()
    codes = None
    if args.rules:
        codes = [code.strip() for code in args.rules.split(",") if code.strip()]
    results = []
    for name in names:
        try:
            spec = build_spec(name)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        try:
            report = effects_spec(spec, codes=codes)
        except ValueError as exc:
            raise SystemExit(str(exc))
        report.spec = name  # key by registry name (spec.name may differ)
        results.append((name, report, compilability_report(spec, report)))
    if args.json:
        from .analysis.diagnostics import SCHEMA_VERSION

        payload = {
            "tool": "effects",
            "schema_version": SCHEMA_VERSION,
            "ok": all(report.ok for _, report, _ in results),
            "models": {
                name: {
                    **report.to_dict(),
                    "compilability": comp.to_dict(),
                }
                for name, report, comp in results
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report, comp in results:
            print(report.render_text(show_suppressed=args.show_suppressed))
            verdict = (
                "fully compilable"
                if comp.fully_compilable
                else f"{len(comp.fusable_states)}/{len(comp.verdicts)} states "
                     f"fusable, {len(comp.unsafe_edges)} unsafe edge(s)"
            )
            print(f"{name}: compilability: {verdict}")
    return 0 if all(report.ok for _, report, _ in results) else 1


def cmd_adlcheck(args) -> int:
    """Source-level semantic analysis (adlcheck) of ADL descriptions;
    exit 1 on any unsuppressed error-severity finding (including parse
    failures, reported as a located ``ADL000``)."""
    import json
    import os

    from .analysis.adl import (
        DEFAULT_PASSES,
        adlcheck_source,
        available_descriptions,
        description_source,
    )

    registered = available_descriptions()
    names = list(args.subjects)
    if "all" in names:
        names = registered
    codes = None
    if args.rules:
        codes = {code.strip() for code in args.rules.split(",") if code.strip()}
        unknown = codes - set(DEFAULT_PASSES)
        if unknown:
            raise SystemExit(f"unknown adlcheck rule code(s): {sorted(unknown)}")
    reports = []
    for name in names:
        if name in registered:
            text = description_source(name)
        elif os.path.exists(name):
            text = _read_source(name)
        else:
            raise SystemExit(
                f"unknown description {name!r}: not a registered name "
                f"({', '.join(registered)}) and no such file"
            )
        try:
            report = adlcheck_source(
                text, unit=name, codes=codes,
                synth_closure=not args.no_closure,
            )
        except ValueError as exc:  # e.g. --rules ADL010 with --no-closure
            raise SystemExit(str(exc))
        reports.append((name, report))
    if args.json:
        from .analysis.diagnostics import SCHEMA_VERSION

        payload = {
            "tool": "adlcheck",
            "schema_version": SCHEMA_VERSION,
            "ok": all(report.ok for _, report in reports),
            "descriptions": {name: report.to_dict() for name, report in reports},
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in reports:
            print(report.render_text(show_suppressed=args.show_suppressed))
    return 0 if all(report.ok for _, report in reports) else 1


#: models benched by ``bench --model cases`` (one per bundled ISA)
BENCH_CASE_MODELS = ("strongarm", "ppc750")


def _model_decode_cache(model):
    """The model's ISS-level :class:`~repro.iss.decode_cache.DecodeCache`,
    whether it fetches directly (``model.iss``) or through an oracle."""
    iss = getattr(model, "iss", None)
    if iss is None:
        oracle = getattr(model, "oracle", None)
        iss = getattr(oracle, "interpreter", None)
    return getattr(iss, "decode_cache", None)


def _bench_model(model_name: str, args, fused: bool) -> dict:
    """One bench row: run every workload on *model_name*, aggregate.

    The timed simulate runs happen with the cyclic garbage collector
    paused (collected right before, re-enabled right after): the
    simulator allocates at a steady rate and GC passes mid-measurement
    only add variance.  Results are unaffected — collection has no
    semantic effect.
    """
    import gc

    from .core.stats import SimulationStats
    from .workloads import mediabench

    isa = args.isa or MODEL_DEFAULT_ISA.get(model_name, "arm")
    names = list(mediabench.MEDIABENCH_NAMES)
    if args.quick:
        names = names[:3]
    agg = SimulationStats()
    source_of = mediabench.arm_source if isa == "arm" else mediabench.ppc_source
    per_workload = []
    mismatches = []
    compile_stats = None
    cache_counts = {"block_hits": 0, "block_misses": 0,
                    "entry_invalidations": 0, "block_invalidations": 0}
    for name in names:
        with agg.time_phase("assemble"):
            program = _assemble(isa, source_of(name))
        with agg.time_phase("build"):
            model = _build_model(model_name, program, isa, fused=fused)
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            stats = model.run(args.max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()
        agg.absorb_compile_stats(model.spec)
        compile_stats = model.spec.compile_stats
        cache = _model_decode_cache(model)
        if cache is not None:
            cache_counts["block_hits"] += cache.block_hits
            cache_counts["block_misses"] += cache.block_misses
            cache_counts["entry_invalidations"] += cache.invalidations
            cache_counts["block_invalidations"] += cache.block_invalidations
        result = {
            "cycles": stats.cycles,
            "instructions": stats.instructions,
            "transitions": stats.transitions,
            "exit_code": model.exit_code,
        }
        per_workload.append({"workload": name, **result})
        agg.cycles += stats.cycles
        agg.instructions += stats.instructions
        agg.transitions += stats.transitions
        agg.wall_seconds += stats.wall_seconds
        agg.record_phase("simulate", stats.phase_seconds.get("simulate", 0.0))
        if not args.no_verify:
            # re-run under the reference scheduling loop: the fast path
            # must be result-identical, not merely faster
            with agg.time_phase("verify"):
                with agg.time_phase("build"):
                    ref_model = _build_model(model_name, program, isa, fused=fused)
                ref_model.director.reference = True
                ref_stats = ref_model.run(args.max_cycles)
            reference = {
                "cycles": ref_stats.cycles,
                "instructions": ref_stats.instructions,
                "transitions": ref_stats.transitions,
                "exit_code": ref_model.exit_code,
            }
            if reference != result:
                mismatches.append(
                    {"workload": name, "fast": result, "reference": reference}
                )
    probes = cache_counts["block_hits"] + cache_counts["block_misses"]
    block_hit_rate = (
        round(cache_counts["block_hits"] / probes, 4) if probes else None
    )
    return {
        "bench": "speed",
        "model": model_name,
        "isa": isa,
        "quick": bool(args.quick),
        "fused": fused,
        "workloads": per_workload,
        "cycles": agg.cycles,
        "instructions": agg.instructions,
        "transitions": agg.transitions,
        "wall_seconds": round(agg.wall_seconds, 4),
        "cycles_per_second": round(agg.cycles_per_second, 1),
        "events_per_second": round(agg.transitions_per_second, 1),
        "phase_seconds": {
            name: round(seconds, 4) for name, seconds in agg.phase_seconds.items()
        },
        "verified": (not args.no_verify) and not mismatches,
        "mismatches": mismatches,
        "compiled_probes": agg.compiled_probes,
        "probe_fallbacks": agg.probe_fallbacks,
        "fallback_edges": [
            {"edge": edge, "reason": reason} for edge, reason in agg.fallback_edges
        ],
        "fused_states": compile_stats.fused_states if compile_stats else 0,
        "fused_fallback_states": (
            compile_stats.fused_fallback_states if compile_stats else 0
        ),
        "decode_cache": {**cache_counts, "block_hit_rate": block_hit_rate},
    }


def _print_bench_row(row: dict, verify: bool) -> None:
    mode = "fused" if row["fused"] else "no-fused"
    print(f"{row['model']} ({mode}): {row['cycles']} cycles in "
          f"{row['wall_seconds']:.2f}s "
          f"= {row['cycles_per_second']:,.0f} cycles/sec, "
          f"{row['events_per_second']:,.0f} events/sec")
    for name in sorted(row["phase_seconds"]):
        print(f"  phase {name:<9}: {row['phase_seconds'][name]:.3f}s")
    if row["compiled_probes"] or row["probe_fallbacks"]:
        print(f"  probes: {row['compiled_probes']} compiled, "
              f"{row['probe_fallbacks']} interpreted fallbacks")
    print(f"  fused states: {row['fused_states']} "
          f"({row['fused_fallback_states']} fallback)")
    cache = row["decode_cache"]
    if cache["block_hit_rate"] is not None:
        print(f"  block cache: {cache['block_hits']} hits / "
              f"{cache['block_misses']} misses "
              f"(hit rate {cache['block_hit_rate']:.2%}, "
              f"{cache['entry_invalidations']}+"
              f"{cache['block_invalidations']} invalidated)")
    if verify:
        state = "ok" if not row["mismatches"] else "MISMATCH"
        print(f"  reference-loop verification: {state}")


def _bench_row_key(row):
    """Identity of a bench row inside ``--out`` files: rows for other
    (bench, model, quick, fused) combinations must survive a rerun."""
    return (row.get("bench"), row.get("model"),
            bool(row.get("quick")), bool(row.get("fused")))


def _merge_bench_rows(path: str, rows) -> list:
    """Merge *rows* into the JSON bench file at *path*.

    Earlier versions wrote ``--out`` with a whole-file ``json.dump``, so
    re-benching one model clobbered every other model's rows.  Now the
    existing file (a row object or a list of rows) is read back,
    rows with a matching :func:`_bench_row_key` are replaced in place,
    new keys are appended, and the file always ends up a list.  An
    unreadable or malformed file is treated as empty rather than
    aborting the bench that just finished.
    """
    import json
    import os

    existing: list = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if isinstance(payload, dict):
                existing = [payload]
            elif isinstance(payload, list):
                existing = [row for row in payload if isinstance(row, dict)]
        except (OSError, ValueError):
            existing = []
    fresh = {_bench_row_key(row): row for row in rows}
    merged = []
    for row in existing:
        merged.append(fresh.pop(_bench_row_key(row), row))
    merged.extend(fresh.values())
    with open(path, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    return merged


def cmd_bench(args) -> int:
    """Benchmark models over the MediaBench workloads.

    Emits one JSON row per model with cycles/s, events/s (committed OSM
    transitions per second), the per-phase wall-time breakdown from the
    phase-attributed stats layer, the whole-model specialization
    counters (``fused_states``/``fused_fallback_states``) and the
    ISS block-cache hit rate.  ``--model cases`` benches every case-study
    model (StrongARM and PPC 750).  ``--out`` holds a JSON array and is
    *merged*, not overwritten: rows are keyed by (bench, model, quick,
    fused), so partial reruns replace only their own rows.  Unless
    ``--no-verify`` is given, every workload is re-run under the
    director's reference scheduling loop and the simulation results
    (cycles, instructions, transitions, exit code) are compared — a
    mismatch fails the bench with exit status 1.  CI's perf-smoke job
    runs ``bench --quick`` fused and unfused and fails only on result
    mismatches, never on speed.
    """
    import json

    if args.model == "cases" and args.isa:
        raise SystemExit("--isa conflicts with --model cases "
                         "(each case model implies its ISA)")
    model_names = (
        list(BENCH_CASE_MODELS) if args.model == "cases" else [args.model]
    )
    fused = not args.no_fused
    rows = [_bench_model(name, args, fused) for name in model_names]
    payload = rows if args.model == "cases" else rows[0]
    if args.out:
        _merge_bench_rows(args.out, rows)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for row in rows:
            _print_bench_row(row, verify=not args.no_verify)
    failed = False
    for row in rows:
        for mismatch in row["mismatches"]:
            failed = True
            print(f"result mismatch on {row['model']}/{mismatch['workload']}: "
                  f"fast={mismatch['fast']} reference={mismatch['reference']}",
                  file=sys.stderr)
    return 1 if failed else 0


def cmd_serve(args) -> int:
    """Run the fleet job server (``repro serve``)."""
    from .fleet.server import serve

    serve(host=args.host, port=args.port, workers=args.workers,
          cache_dir=args.cache_dir, start_method=args.start_method)
    return 0


def _load_jobs(args) -> list:
    import json

    if args.sweep:
        from .fleet.bench import bench_jobs

        return bench_jobs(quick=args.sweep == "quick")
    if not args.jobs:
        raise SystemExit("submit needs a jobs file or --sweep")
    text = _read_source(args.jobs)
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"bad jobs JSON: {exc}")
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list) or not payload:
        raise SystemExit("jobs file must hold a job object or a list of jobs")
    return payload


def cmd_submit(args) -> int:
    """Submit jobs to a fleet server (``repro submit``).

    Streams one line per result as the server reports it; exits 1 if
    any job errored.  ``--ping`` and ``--shutdown`` are connection
    conveniences for scripts and CI.
    """
    import json

    from .fleet.client import FleetClient, FleetClientError

    client = FleetClient(host=args.host, port=args.port,
                         timeout=args.timeout)
    try:
        if args.ping:
            print(json.dumps(client.ping()))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.shutdown:
            print(json.dumps(client.shutdown()))
            return 0
        jobs = _load_jobs(args)
        summary = None
        for message in client.submit(jobs):
            if message.get("type") == "summary":
                summary = message
                continue
            if args.json:
                print(json.dumps(message))
            else:
                progress = message.get("progress", {})
                state = ("cache" if message.get("cached")
                         else "dedup" if message.get("dedup")
                         else "ran")
                status = "ok" if message.get("ok") else "ERROR"
                print(f"[{progress.get('completed', '?')}/"
                      f"{progress.get('total', '?')}] "
                      f"job {message.get('job')}: {status} ({state})")
    except FleetClientError as exc:
        print(f"fleet error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach fleet server at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    if summary is None:
        print("fleet error: submission ended without a summary",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary))
    else:
        print(f"{summary['jobs']} jobs: {summary['executed']} executed, "
              f"{summary['cache_hits']} cache hits, "
              f"{summary['dedup_hits']} dedup hits, "
              f"{summary['errors']} errors "
              f"(hit rate {summary['cache_hit_rate']:.2%})")
    return 1 if summary.get("errors") else 0


def cmd_fleet_bench(args) -> int:
    """End-to-end fleet throughput bench (``repro fleet-bench``).

    Runs the bench sweep cold then warm over one runner and writes the
    row to ``--out`` (default ``BENCH_fleet.json``).  Fails unless the
    warm pass is ≥90% cache hits with bit-identical payloads.
    """
    import json

    from .fleet.bench import MIN_WARM_HIT_RATE, fleet_bench

    row = fleet_bench(workers=args.workers, quick=args.quick,
                      cache_dir=args.cache_dir,
                      start_method=args.start_method)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(row, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(row, indent=2))
    else:
        print(f"fleet bench ({row['workers']} workers, "
              f"{row['jobs']} jobs, {row['unique_jobs']} unique): "
              f"cold {row['cold']['jobs_per_second']:.2f} jobs/s, "
              f"warm {row['warm']['jobs_per_second']:.2f} jobs/s, "
              f"warm hit rate {row['cache_hit_rate']:.2%}, "
              f"results {'identical' if row['results_identical'] else 'DIFFER'}")
    if not row["ok"]:
        print(f"fleet bench FAILED: warm hit rate {row['cache_hit_rate']:.2%} "
              f"(need ≥{MIN_WARM_HIT_RATE:.0%}), results_identical="
              f"{row['results_identical']}, errors "
              f"{row['cold']['errors']}+{row['warm']['errors']}",
              file=sys.stderr)
        return 1
    return 0


def cmd_workload(args) -> int:
    from .workloads import kernels, mediabench, speclike

    name = args.name
    if name in mediabench.MEDIABENCH_NAMES:
        source = (mediabench.arm_source if args.isa == "arm" else mediabench.ppc_source)(name)
    elif name in kernels.KERNEL_NAMES:
        if args.isa != "arm":
            raise SystemExit("diagnostic loops are ARM-only")
        source = kernels.arm_source(name)
    elif name in speclike.SPECLIKE_NAMES:
        if args.isa != "ppc":
            raise SystemExit("SPEC-like kernels are PPC-only")
        source = speclike.ppc_source(name)
    else:
        raise SystemExit(f"unknown workload {name!r}")
    print(source)
    return 0


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OSM retargetable microprocessor simulation"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="assemble and simulate a program")
    run.add_argument("file", help="assembly source ('-' for stdin)")
    run.add_argument("--model", default="strongarm",
                     choices=sorted(MODEL_DEFAULT_ISA))
    run.add_argument("--isa", choices=("arm", "ppc"))
    run.add_argument("--trace", action="store_true", help="print a pipeline chart")
    run.add_argument("--trace-ops", type=int, default=40)
    run.add_argument("--max-cycles", type=int, default=10_000_000)
    run.set_defaults(func=cmd_run)

    asm = sub.add_parser("asm", help="assemble and list")
    asm.add_argument("file")
    asm.add_argument("--isa", default="arm", choices=("arm", "ppc"))
    asm.set_defaults(func=cmd_asm)

    analyze = sub.add_parser(
        "analyze",
        help="run all five analysis tools over model specs (merged report)",
    )
    analyze.add_argument(
        "models", nargs="+", metavar="MODEL",
        help="registered spec name(s), or 'all'",
    )
    analyze.add_argument("--json", action="store_true",
                         help="one merged machine-readable report")
    analyze.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    analyze.set_defaults(func=cmd_analyze)

    lint = sub.add_parser(
        "lint", help="static analysis (osmlint) of model specifications"
    )
    lint.add_argument(
        "models", nargs="+", metavar="MODEL",
        help="registered spec name(s), or 'all'",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--rules", help="comma-separated rule codes to run (default: all)"
    )
    lint.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    lint.set_defaults(func=cmd_lint)

    checker = sub.add_parser(
        "check", help="explicit-state model checking (osmcheck) of model specifications"
    )
    checker.add_argument(
        "models", nargs="+",
        help="registered model names, or 'all' for every registered spec",
    )
    checker.add_argument("--json", action="store_true", help="machine-readable output")
    checker.add_argument(
        "--n-osms", type=int, default=2, metavar="N",
        help="number of concurrent OSM instances to compose (default 2)",
    )
    checker.add_argument(
        "--naive", action="store_true",
        help="disable symmetry + partial-order reduction (full interleaving)",
    )
    checker.add_argument(
        "--max-states", type=int, default=200_000, metavar="N",
        help="state-count bound before the search is truncated",
    )
    checker.add_argument(
        "--properties", metavar="CODES",
        help="comma-separated property codes to check (e.g. CHK001,CHK004)",
    )
    checker.set_defaults(func=cmd_check)

    audit = sub.add_parser(
        "audit",
        help="cross-layer ISA/model consistency audit (isaaudit)",
    )
    audit.add_argument(
        "subjects", nargs="+", metavar="SUBJECT",
        help="ISA target (arm, ppc), registered model spec name, or 'all'",
    )
    audit.add_argument("--json", action="store_true", help="machine-readable output")
    audit.add_argument(
        "--rules", "--codes", dest="rules", metavar="CODES",
        help="comma-separated rule codes to run (e.g. ISA003,ISA008)",
    )
    audit.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    audit.set_defaults(func=cmd_audit)

    effects = sub.add_parser(
        "effects",
        help="static effect/purity analysis (effectcheck) of model specifications",
    )
    effects.add_argument(
        "models", nargs="+", metavar="MODEL",
        help="registered spec name(s), or 'all'",
    )
    effects.add_argument("--json", action="store_true", help="machine-readable output")
    effects.add_argument(
        "--rules", metavar="CODES",
        help="comma-separated rule codes to run (e.g. EFF001,EFF004)",
    )
    effects.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    effects.set_defaults(func=cmd_effects)

    certify = sub.add_parser(
        "certify",
        help="translation validation (transcheck) of generated fast-path code",
    )
    certify.add_argument(
        "subjects", nargs="+", metavar="SUBJECT",
        help="ISA target (arm, ppc), registered model spec name, or 'all'",
    )
    certify.add_argument("--json", action="store_true", help="machine-readable output")
    certify.add_argument(
        "--rules", "--codes", dest="rules", metavar="CODES",
        help="comma-separated rule codes to run (e.g. TRV001,TRV003)",
    )
    certify.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    certify.set_defaults(func=cmd_certify)

    adlcheck = sub.add_parser(
        "adlcheck",
        help="source-level semantic analysis (adlcheck) of ADL descriptions",
    )
    adlcheck.add_argument(
        "subjects", nargs="+", metavar="SUBJECT",
        help="registered description name (adl-*), ADL file path, or 'all'",
    )
    adlcheck.add_argument("--json", action="store_true",
                          help="machine-readable output")
    adlcheck.add_argument(
        "--rules", "--codes", dest="rules", metavar="CODES",
        help="comma-separated rule codes to run (e.g. ADL001,ADL010)",
    )
    adlcheck.add_argument(
        "--no-closure", action="store_true",
        help="skip the ADL010 synthesis-closure pass (source-level rules only)",
    )
    adlcheck.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    adlcheck.set_defaults(func=cmd_adlcheck)

    bench = sub.add_parser("bench", help="measure simulation speed")
    bench.add_argument("--model", default="cases",
                       choices=sorted(set(MODEL_DEFAULT_ISA) - {"iss"}) + ["cases"],
                       help="a single model, or 'cases' for one row per "
                            "case-study model (strongarm + ppc750)")
    bench.add_argument("--isa", choices=("arm", "ppc"))
    bench.add_argument("--no-fused", action="store_true",
                       help="disable the fused per-state step functions "
                            "(A/B baseline; results must be identical)")
    bench.add_argument("--max-cycles", type=int, default=10_000_000)
    bench.add_argument("--quick", action="store_true",
                       help="CI subset: first three workloads only")
    bench.add_argument("--json", action="store_true",
                       help="print the result row as JSON")
    bench.add_argument("--out", metavar="FILE",
                       help="also write the JSON row to FILE")
    bench.add_argument("--no-verify", action="store_true",
                       help="skip the reference-loop result verification")
    bench.set_defaults(func=cmd_bench)

    from .fleet.server import DEFAULT_PORT

    serve = sub.add_parser(
        "serve", help="run the fleet job server (multiprocess, cached)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes (0 = serial in-process)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persistent result-cache directory "
                            "(default: in-memory)")
    serve.add_argument("--start-method", default="spawn",
                       choices=("spawn", "fork", "forkserver"))
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit jobs to a fleet server and stream results"
    )
    submit.add_argument("jobs", nargs="?",
                        help="JSON jobs file ('-' for stdin); "
                             "a job object or a list of jobs")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit.add_argument("--sweep", choices=("quick", "full"),
                        help="submit the built-in bench sweep matrix "
                             "instead of a jobs file")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="socket timeout in seconds")
    submit.add_argument("--json", action="store_true",
                        help="stream raw JSON record lines")
    submit.add_argument("--ping", action="store_true",
                        help="just check the server is up")
    submit.add_argument("--stats", action="store_true",
                        help="print the server's pool + cache counters")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the server to stop")
    submit.set_defaults(func=cmd_submit)

    fleet_bench = sub.add_parser(
        "fleet-bench",
        help="end-to-end fleet throughput + cache hit rate bench",
    )
    fleet_bench.add_argument("--workers", type=int, default=2,
                             help="worker processes (0 = serial in-process)")
    fleet_bench.add_argument("--quick", action="store_true",
                             help="CI subset of the sweep matrix")
    fleet_bench.add_argument("--cache-dir", metavar="DIR",
                             help="persistent result-cache directory "
                                  "(default: in-memory)")
    fleet_bench.add_argument("--start-method", default="spawn",
                             choices=("spawn", "fork", "forkserver"))
    fleet_bench.add_argument("--out", metavar="FILE",
                             default="BENCH_fleet.json",
                             help="write the JSON row to FILE "
                                  "(default BENCH_fleet.json)")
    fleet_bench.add_argument("--json", action="store_true",
                             help="print the result row as JSON")
    fleet_bench.set_defaults(func=cmd_fleet_bench)

    workload = sub.add_parser("workload", help="print a bundled workload source")
    workload.add_argument("name")
    workload.add_argument("--isa", default="arm", choices=("arm", "ppc"))
    workload.set_defaults(func=cmd_workload)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # downstream consumer (head, jq -e ...) closed the pipe; not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
