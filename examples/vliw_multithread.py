#!/usr/bin/env python3
"""Section-6 extensions: VLIW and multithreaded models.

* VLIW — "Since Very Long Instruction Word architectures have simpler
  pipeline control, they can be easily modeled by OSM as well": a 2-wide
  machine whose stages are token *pools* and which has no register-file
  manager at all (the compiler owns data hazards).

* MT — "each OSM carries a tag indicating the thread that it belongs
  to": two threads share the pipeline; a D-cache miss parks in a
  per-thread miss slot so the other thread keeps flowing, which is where
  multithreading earns its throughput.

Run:  python examples/vliw_multithread.py
"""

from repro.isa.arm import assemble
from repro.models.multithread import MultithreadModel
from repro.models.strongarm import StrongArmModel, default_dcache
from repro.models.vliw import VliwModel
from repro.workloads import kernels, mediabench


def main() -> None:
    source = mediabench.arm_source("gsm_dec")

    # --- VLIW vs scalar ------------------------------------------------------
    scalar = StrongArmModel(assemble(source), perfect_memory=True)
    scalar_stats = scalar.run()
    for width in (1, 2, 4):
        vliw = VliwModel(assemble(source), width=width)
        stats = vliw.run()
        assert vliw.exit_code == scalar.exit_code
        print(f"VLIW width {width}: {vliw.cycles:5d} cycles, IPC {stats.ipc:.2f}")
    print(f"scalar StrongARM: {scalar.cycles:5d} cycles, IPC {scalar_stats.ipc:.2f}")

    # --- multithreading hides memory latency ----------------------------------
    thread_a = kernels.arm_source("stride32")  # cache-miss heavy
    thread_b = kernels.arm_source("stride8")
    together = MultithreadModel(
        [assemble(thread_a), assemble(thread_b)], dcache=default_dcache()
    )
    together.run()
    solo_a = MultithreadModel([assemble(thread_a)], dcache=default_dcache())
    solo_a.run()
    solo_b = MultithreadModel([assemble(thread_b)], dcache=default_dcache())
    solo_b.run()
    solo_total = solo_a.cycles + solo_b.cycles
    print(f"\nMT: two miss-heavy threads interleaved: {together.cycles} cycles")
    print(f"    same threads run back-to-back:      {solo_total} cycles")
    print(f"    multithreading speedup:             "
          f"{solo_total / together.cycles:.2f}x")
    print(f"    per-thread fetch shares:            "
          f"{together.fetch.fetched_per_thread}")


if __name__ == "__main__":
    main()
