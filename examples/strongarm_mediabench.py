#!/usr/bin/env python3
"""Case study 1 (Section 5.1): the StrongARM model on MediaBench kernels.

Runs the six MediaBench-like kernels through:

* the OSM StrongARM model (forwarding, early-terminating multiplier,
  SA-1100 caches and TLBs),
* the hand-coded SimpleScalar-style simulator of the same machine,
* the detailed iPAQ hardware reference,

and prints the paper's Table-1-style comparison plus cache statistics.

Run:  python examples/strongarm_mediabench.py
"""

from repro.baselines.reference import IpaqReference
from repro.baselines.simplescalar import SimpleScalarArm
from repro.isa.arm import assemble
from repro.models.strongarm import (
    CLOCK_HZ,
    StrongArmModel,
    default_dcache,
    default_dtlb,
    default_icache,
    default_itlb,
)
from repro.reporting import format_table, percent
from repro.workloads import mediabench


def main() -> None:
    rows = []
    for name in mediabench.MEDIABENCH_NAMES:
        source = mediabench.arm_source(name)

        model = StrongArmModel(assemble(source))
        model.run()

        baseline = SimpleScalarArm(
            assemble(source),
            icache=default_icache(), dcache=default_dcache(),
            itlb=default_itlb(), dtlb=default_dtlb(),
        )
        baseline.run()

        reference = IpaqReference(assemble(source))
        reference.run()

        assert model.exit_code == baseline.exit_code == reference.exit_code
        delta_ref = 100.0 * (model.cycles - reference.cycles) / reference.cycles
        rows.append([
            name.replace("_", "/"),
            model.cycles,
            baseline.cycles,
            reference.cycles,
            percent(delta_ref),
            f"{model.fetch.icache.stats.hit_rate:.1%}",
            f"{model.dcache.stats.hit_rate:.1%}",
        ])

    print(format_table(
        ["benchmark", "OSM cycles", "hand-coded", "iPAQ-ref", "vs ref",
         "I$ hit", "D$ hit"],
        rows,
        title=f"StrongARM case study at {CLOCK_HZ / 1e6:.0f} MHz "
              "(OSM == hand-coded cycle-for-cycle; small deltas vs the "
              "detailed reference, as in Table 1)",
    ))


if __name__ == "__main__":
    main()
