#!/usr/bin/env python3
"""Quickstart: build and run the paper's tutorial 5-stage pipeline model.

This walks the Section-4 example end to end:

1. assemble a small ARM-like program,
2. run it through the plain ISS (functional reference),
3. run it through the OSM 5-stage pipeline model (Figures 5/6),
4. inspect cycle counts, hazards and token-manager statistics.

Run:  python examples/quickstart.py
"""

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter
from repro.models.pipeline5 import Pipeline5Model

SOURCE = r"""
    ; sum of squares 1..10, with a data-dependent loop
    .text
_start:
    mov  r0, #0          ; acc
    mov  r1, #1          ; i
loop:
    mul  r2, r1, r1      ; i*i   (multi-cycle multiplier)
    add  r0, r0, r2      ; RAW hazard on r2
    add  r1, r1, #1
    cmp  r1, #11
    blt  loop            ; taken branch -> control hazard
    li   r4, message
    mov  r5, r0
    mov  r1, #16
    mov  r0, r4
    swi  #2              ; write(message)
    mov  r0, r5
    swi  #0              ; exit(acc & 0xff)
    .data
message: .asciz "sum of squares!\n"
"""


def main() -> None:
    # --- functional reference -------------------------------------------
    program = assemble(SOURCE)
    iss = ArmInterpreter(program)
    exit_code = iss.run()
    print(f"ISS: exit={exit_code}, {iss.steps} instructions,"
          f" output={iss.syscalls.output_text!r}")

    # --- OSM micro-architecture model ------------------------------------
    model = Pipeline5Model(assemble(SOURCE))
    stats = model.run()
    print(f"OSM pipeline5: {stats.cycles} cycles, IPC={stats.ipc:.3f},"
          f" exit={model.exit_code}")
    assert model.exit_code == exit_code
    assert model.retired == iss.steps

    # --- where did the cycles go? ----------------------------------------
    print("\nper-stage stall cycles (token release refused):")
    for unit in (model.fetch, model.decode_stage, model.execute_stage,
                 model.buffer_stage, model.writeback_stage):
        print(f"  {unit.name:6s} {unit.stall_cycles:5d}")
    print("\ntoken transactions served by the register-file manager m_r:")
    print(f"  allocations (register-update tokens): {model.regfile.n_allocates}")
    print(f"  releases (write-backs):               {model.regfile.n_releases}")
    print(f"  inquiries (operand reads):            {model.regfile.n_inquiries}")
    print(f"\noperations killed by the reset manager"
          f" (control hazards): {model.reset_unit.kills}")


if __name__ == "__main__":
    main()
