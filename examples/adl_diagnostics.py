#!/usr/bin/env python3
"""Span-mapped ADL diagnostics: what `repro adlcheck` tells the author.

Takes a deliberately broken processor description and runs the
description-level analyzer (`repro.analysis.adl`) over it, printing the
compiler-style diagnostics.  Two things to watch in the output:

1. the source-level rules (ADL001..ADL009) anchor every finding at the
   1-based line of the offending declaration in the description text;
2. the synth-closure rule (ADL010) synthesizes the description, runs the
   OSM-layer pipeline (osmlint + osmcheck + effectcheck) over the
   *generated* spec, and remaps each downstream finding back onto the
   ADL line the author wrote — a deadlock found by the model checker in
   the synthesized machine is reported against the description's retire
   edge, not against generated artifacts the author never saw.

Run:  python examples/adl_diagnostics.py
"""

from repro.adl.synth import PIPELINE5_ADL
from repro.analysis.adl import adlcheck_source, available_descriptions, description_source

#: a five-stage pipeline with five seeded source-level defects —
#: each comment names the rule that catches it
BROKEN_ADL = """\
processor broken {
    param osms 7
    param width 2                       # ADL009: synthesiser ignores it
    manager m_f kind fetch
    manager m_d kind stage
    manager m_d kind stage              # ADL002: duplicate declaration
    manager m_e kind stage
    manager m_w kind stage
    manager m_r kind regfile regs 17
    manager m_reset kind reset

    machine op {
        state I initial
        state F
        state D
        state E
        state W

        edge I -> F { allocate m_f } action fetch
        edge F -> D { allocate m_dd; release m_f }          # ADL001: m_dd undeclared
        edge D -> E { allocate m_e; inquire m_r srcs;
                      allocate_many m_r dests as rupd; release m_d } action execute
        edge E -> W { allocate m_w; release m_e } action memory action publish
        edge W -> I { release m_w; release_many rupd } action retire
        edge F -> I priority 10 { inquire m_reset; discard } action killed
        edge D -> Q priority 10 { inquire m_reset; discard } action killed  # ADL003
    }
}
"""
# (`inquire m_r srcs` on the issue edge is the fifth: ADL005 rejects the
# unknown identifier word — the vocabulary is `sources` / `dests`.)

#: every reference resolves and the tokens balance — the source-level
#: rules pass — but the retire edge now also demands the reset
#: manager's token, which deadlocks the synthesized machine.  Only the
#: ADL010 closure sees it, and the model checker's counterexample comes
#: back span-mapped onto the retire edge's ADL line.
DEADLOCK_ADL = PIPELINE5_ADL.replace(
    "edge W -> I { release m_w; release_many rupd } action retire",
    "edge W -> I { inquire m_reset; release m_w; release_many rupd } "
    "action retire",
)


def main() -> None:
    print("=== source-level defects (ADL001..ADL009) ===")
    report = adlcheck_source(BROKEN_ADL, unit="broken.adl", synth_closure=False)
    assert not report.ok
    print(report.render_text())

    print()
    print("=== a defect only the synth closure (ADL010) can see ===")
    source_only = adlcheck_source(DEADLOCK_ADL, unit="deadlock.adl",
                                  synth_closure=False)
    print(f"source-level rules alone: ok={source_only.ok} "
          "(every reference resolves, tokens balance)")
    closed = adlcheck_source(DEADLOCK_ADL, unit="deadlock.adl",
                             synth_closure=True)
    assert not closed.ok
    print(closed.render_text())
    # the remapped findings point into the description, not the
    # synthesized artifacts: every span names the checked unit
    for diag in closed.active:
        if diag.source_span is not None:
            assert diag.source_span.unit == "deadlock.adl"

    print()
    print("=== the bundled descriptions check clean ===")
    for name in available_descriptions():
        bundled = adlcheck_source(description_source(name), unit=name,
                                  synth_closure=True)
        assert bundled.ok and not bundled.diagnostics
        print(f"{name}: clean ({len(bundled.passes_run)} passes, "
              "zero suppressions)")


if __name__ == "__main__":
    main()
