#!/usr/bin/env python3
"""Case study 2 (Section 5.2): the out-of-order PPC-750 model.

Runs the MediaBench + SPEC-like mix through the OSM PPC-750 model and
the SystemC-style (port/wire/delta-cycle) model, showing:

* superscalar IPC and branch-prediction behaviour,
* the paper's "within 3%" cross-validation,
* the Figure-2 behaviour: operations dispatch directly into a free
  function unit when operands are ready, else into its reservation
  station.

Run:  python examples/ppc750_superscalar.py
"""

from repro.baselines.systemc_style import Ppc750SystemC
from repro.isa.ppc import assemble
from repro.models.ppc750 import Ppc750Model
from repro.reporting import format_table, percent
from repro.workloads import mediabench, speclike


def main() -> None:
    rows = []
    names = list(mediabench.MEDIABENCH_NAMES) + list(speclike.SPECLIKE_NAMES)
    for name in names:
        if name in mediabench.MEDIABENCH_NAMES:
            source = mediabench.ppc_source(name)
        else:
            source = speclike.ppc_source(name)

        model = Ppc750Model(assemble(source))
        stats = model.run()

        systemc = Ppc750SystemC(assemble(source))
        systemc.run()
        assert model.exit_code == systemc.exit_code

        delta = 100.0 * (model.cycles - systemc.cycles) / systemc.cycles
        rows.append([
            name,
            model.cycles,
            f"{stats.ipc:.2f}",
            f"{model.predictor.accuracy:.1%}",
            model.fetch.wrong_path_fetched,
            systemc.cycles,
            percent(delta),
        ])

    print(format_table(
        ["benchmark", "cycles", "IPC", "branch acc", "wrong-path ops",
         "SystemC-style", "delta"],
        rows,
        title="PPC-750 case study: dual-issue out-of-order OSM model "
              "vs hardware-centric model (paper: within 3%)",
    ))

    # Show the Figure-2 dispatch split on one workload.
    model = Ppc750Model(assemble(mediabench.ppc_source("gsm_enc")))
    direct = {"direct": 0, "station": 0}

    def trace(clock, osm, edge):
        if edge.label.startswith("direct-"):
            direct["direct"] += 1
        elif edge.label.startswith("station-"):
            direct["station"] += 1

    model.director.trace = trace
    model.run()
    total = direct["direct"] + direct["station"]
    print(f"\nFigure-2 dispatch behaviour on gsm_enc: "
          f"{direct['direct']} direct-to-unit ({direct['direct'] / total:.0%}), "
          f"{direct['station']} via reservation station")


if __name__ == "__main__":
    main()
