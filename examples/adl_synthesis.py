#!/usr/bin/env python3
"""Retargetable simulator generation from the ADL (the paper's next step).

Defines a processor in the OSM architecture description language,
synthesises a working cycle simulator from it, and cross-validates the
synthesised StrongARM against the hand-written model — demonstrating the
paper's claim that the ~60% of simulator code devoted to "decoding and
OSM initialization ... can be automatically synthesized through the use
of an architecture description language".

The example also *retargets*: starting from the StrongARM description it
derives a variant with a deeper memory pipeline purely by editing the
description text — no simulator code changes.

Run:  python examples/adl_synthesis.py
"""

from repro.adl import PIPELINE5_ADL, STRONGARM_ADL, parse, synthesize
from repro.isa.arm import assemble
from repro.models.strongarm import StrongArmModel
from repro.workloads import mediabench

#: a retargeted variant: an extra memory stage (B2) lengthens load-use
DEEP_MEMORY_ADL = STRONGARM_ADL.replace(
    "processor strongarm", "processor strongarm_deepmem"
).replace(
    "        state B\n",
    "        state B\n        state B2\n",
).replace(
    "        edge B -> W { allocate m_w; release m_b } action publish_loads\n",
    "        edge B -> B2 { allocate m_b2; release m_b }\n"
    "        edge B2 -> W { allocate m_w; release m_b2 } action publish_loads\n",
).replace(
    "    manager m_w kind stage\n",
    "    manager m_w kind stage\n    manager m_b2 kind stage\n",
)


def main() -> None:
    processor = parse(STRONGARM_ADL)
    machine = processor.machine
    print(f"parsed processor {processor.name!r}: "
          f"{len(processor.managers)} managers, "
          f"{len(machine.states)} states, {len(machine.edges)} edges")

    source = mediabench.arm_source("gsm_dec")

    # --- synthesise and cross-validate ------------------------------------
    synthesised = synthesize(STRONGARM_ADL, assemble(source))
    synthesised.run()
    hand_written = StrongArmModel(assemble(source), perfect_memory=True)
    hand_written.run()
    print(f"gsm_dec: synthesised {synthesised.cycles} cycles, "
          f"hand-written {hand_written.cycles} cycles "
          f"({'cycle-exact' if synthesised.cycles == hand_written.cycles else 'DIFFER'})")
    assert synthesised.exit_code == hand_written.exit_code

    # --- the tutorial pipeline, synthesised --------------------------------
    tutorial = synthesize(PIPELINE5_ADL, assemble(source))
    tutorial.run()
    print(f"pipeline5 (no forwarding): {tutorial.cycles} cycles — "
          f"forwarding saves {tutorial.cycles - synthesised.cycles} cycles")

    # --- retarget: deeper memory pipeline -----------------------------------
    deep = synthesize(DEEP_MEMORY_ADL, assemble(source))
    deep.run()
    print(f"retargeted strongarm_deepmem (extra B2 stage): {deep.cycles} cycles "
          f"(+{deep.cycles - synthesised.cycles} from the longer load-use path)")
    assert deep.exit_code == synthesised.exit_code
    assert deep.cycles > synthesised.cycles


if __name__ == "__main__":
    main()
