#!/usr/bin/env python3
"""Section-6 applications: formal analysis and compiler information.

* export the StrongARM operation state machine as an abstract state
  machine (guarded-update rules),
* verify reachability/liveness of the specification,
* statically prove freedom from cyclic resource dependency (and show the
  analysis catching a deliberately cyclic pipeline),
* extract the reservation table and empirical operand latencies a
  retargetable compiler would use for scheduling.

Run:  python examples/formal_analysis.py
"""

from repro.analysis import render_asm, reservation_table, operand_latencies
from repro.analysis.lint.graph import analyze_deadlock, analyze_reachability
from repro.core import Allocate, Condition, MachineSpec, Release, SlotManager
from repro.isa.arm import assemble
from repro.models.pipeline5 import Pipeline5Model
from repro.models.strongarm import StrongArmModel
from repro.workloads import kernels


def main() -> None:
    model = StrongArmModel(assemble(kernels.arm_source("alu_dep1")))
    spec = model.spec

    # --- ASM export -----------------------------------------------------------
    print("=== StrongARM operation OSM as an abstract state machine ===")
    rendering = render_asm(spec)
    print("\n".join(rendering.splitlines()[:18]))
    print(f"... ({len(rendering.splitlines())} lines total)\n")

    # --- reachability / liveness -----------------------------------------------
    report = analyze_reachability(spec)
    print(f"reachability: clean={report.clean} "
          f"(unreachable={sorted(report.unreachable)}, "
          f"non-returning={sorted(report.non_returning)})")

    # --- static deadlock analysis ------------------------------------------------
    deadlock = analyze_deadlock(spec)
    print(f"resource dependencies: {len(deadlock.dependencies)}; "
          f"deadlock free: {deadlock.deadlock_free}")

    # a deliberately cyclic pipeline: two stages allocate each other
    cyclic = MachineSpec("cyclic")
    stage_a, stage_b = SlotManager("A"), SlotManager("B")
    cyclic.state("I", initial=True)
    cyclic.state("P")
    cyclic.state("Q")
    cyclic.edge("I", "P", Condition([Allocate(stage_a)]))
    cyclic.edge("P", "Q", Condition([Allocate(stage_b)]))          # holds A, takes B
    cyclic.edge("Q", "P", Condition([Allocate(stage_a, slot="A2"),
                                     Release("A")]))               # holds B, takes A
    cyclic.edge("Q", "I", Condition([Release("A"), Release("B")]))
    bad = analyze_deadlock(cyclic)
    print(f"deliberately cyclic spec: deadlock free: {bad.deadlock_free}, "
          f"cycles found: {bad.cycles}\n")

    # --- static lint (osmlint) ---------------------------------------------------
    from repro.analysis.lint import lint_spec

    print("=== osmlint: static analysis of the specifications ===")
    report = lint_spec(spec)
    print(report.render_text())
    print(lint_spec(cyclic).render_text())  # flags the OSM008 resource cycle
    # break the StrongARM spec on purpose: forget a Release on an edge
    # back to I and the token-leak rule catches it without running anything
    broken = StrongArmModel(assemble(kernels.arm_source("alu_dep1"))).spec
    retire = next(e for e in broken.edges if e.dst.is_initial and e.condition.primitives)
    retire.condition = Condition(list(retire.condition.primitives)[1:])
    for diagnostic in lint_spec(broken).errors[:3]:
        print(diagnostic.render())
    print()

    # --- explicit-state model checking (osmcheck) --------------------------------
    from repro.analysis.check import check_model, check_system
    from repro.core import ALWAYS, Condition as Cond, Release as Rel

    print("=== osmcheck: explicit-state model checking ===")

    def linear_system():
        stage_a, stage_b = SlotManager("A"), SlotManager("B")
        linear = MachineSpec("linear")
        linear.state("I", initial=True)
        linear.state("P")
        linear.state("Q")
        linear.edge("I", "P", Cond([Allocate(stage_a)]))
        linear.edge("P", "Q", Cond([Allocate(stage_b), Rel("A")]))
        linear.edge("Q", "I", Cond([Rel("B")]))
        return linear, [stage_a, stage_b]

    verdict = check_system(*linear_system(), n_osms=3)
    print(verdict.render_text())

    # the whole StrongARM model, via the pure-token abstraction: every
    # CHK property verified over 2 concurrent operations
    print(check_model("strongarm", n_osms=2).render_text())

    # seed a token leak and the checker answers with the *shortest*
    # counterexample, naming the fired edges by their stable qualnames
    stage = SlotManager("S")
    leaky = MachineSpec("leaky")
    leaky.state("I", initial=True)
    leaky.state("P")
    leaky.edge("I", "P", Cond([Allocate(stage)]), label="grab")
    leaky.edge("P", "I", ALWAYS, label="retire")  # forgot the Release
    print(check_system(leaky, [stage], n_osms=2).render_text())
    print()

    # --- cross-layer ISA audit (isaaudit) ----------------------------------------
    from repro.analysis.audit import audit_target, build_target

    print("=== isaaudit: ISA/model cross-layer consistency ===")
    print(audit_target(build_target("arm"), codes=["ISA003"]).render_text())
    # break the hazard contract on purpose: hide every instruction's
    # first declared source register and the taint-shadow audit catches
    # the undeclared-but-architecturally-observable reads
    lobotomized = build_target("arm")
    real_decode = lobotomized.decode

    def hide_first_source(addr, word):
        instr = real_decode(addr, word)
        if instr.src_regs:
            instr.src_regs = instr.src_regs[1:]
        return instr

    lobotomized.decode = hide_first_source
    for diagnostic in audit_target(lobotomized, codes=["ISA004"]).errors[:3]:
        print(diagnostic.render())
    print()

    # --- effect/purity analysis (effectcheck) ------------------------------------
    from repro.analysis.effects import compilability_report, effects_spec
    from repro.core import Guard

    print("=== effectcheck: effect/purity certification of edge code ===")
    effects = effects_spec(spec)
    comp = compilability_report(spec, effects)
    print(effects.render_text())
    print(f"compilability: fully_compilable={comp.fully_compilable} "
          f"fusable={comp.fusable_states}")
    # seed an impure guard — one that mutates the OSM at probe time —
    # and EFF001 refuses to certify the edge for compilation
    impure = MachineSpec("impure")
    impure.state("I", initial=True)
    impure.state("P")
    stage = SlotManager("S")

    def sneaky(osm):
        osm.operation = None  # probe-time mutation: EFF001
        return True

    impure.edge("I", "P", Condition([Guard(sneaky, "sneaky"), Allocate(stage)]))
    impure.edge("P", "I", Condition([Release("S")]))
    bad_effects = effects_spec(impure)
    for diagnostic in bad_effects.errors[:2]:
        print(diagnostic.render())
    bad_comp = compilability_report(impure, bad_effects)
    print(f"unsafe edges (demoted to interpreted probing): {bad_comp.unsafe_edges}")
    print()

    # --- compiler information -------------------------------------------------------
    print("=== compiler-facing extraction ===")
    print("reservation table (state, resources held):")
    for state, resources in reservation_table(spec):
        print(f"  {state}: {', '.join(resources)}")
    latencies = operand_latencies(lambda p: StrongArmModel(p, perfect_memory=True))
    print(f"operand latencies with forwarding   : {latencies}")
    latencies5 = operand_latencies(lambda p: Pipeline5Model(p))
    print(f"operand latencies without forwarding: {latencies5}")
    print("(the scheduler of a retargetable compiler consumes exactly these)")


if __name__ == "__main__":
    main()
