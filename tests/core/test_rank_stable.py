"""``rank_stable_in_flight`` marking semantics and metadata hygiene.

The decorator must (a) mark plain functions in place, (b) fall back to
a wrapper for callables that refuse attribute assignment — bound
methods, ``functools.partial`` — and (c) carry ``functools.wraps``
metadata on that wrapper so diagnostics, tracebacks and effectcheck's
EFF002 pass all name (and can introspect) the real rank function.
"""

import functools

from repro.core.director import (
    Director,
    age_rank,
    operation_seq_rank,
    rank_stable_in_flight,
)
from repro.core.osm import OperationStateMachine


class Ranker:
    """Host for a bound-method rank key (refuses attribute assignment
    on the bound method object, so the decorator must wrap)."""

    def key(self, osm):
        return osm.age


class TestPlainFunction:
    def test_marked_in_place(self):
        def my_rank(osm):
            return osm.age

        marked = rank_stable_in_flight(my_rank)
        assert marked is my_rank
        assert marked.rank_changes_only_at_initial is True

    def test_metadata_untouched(self):
        def my_rank(osm):
            "docstring survives"
            return osm.age

        marked = rank_stable_in_flight(my_rank)
        assert marked.__name__ == "my_rank"
        assert marked.__doc__ == "docstring survives"
        assert not hasattr(marked, "__wrapped__")


class TestWrappedCallables:
    def test_bound_method_is_wrapped_with_metadata(self):
        bound = Ranker().key
        marked = rank_stable_in_flight(bound)
        assert marked is not bound
        assert marked.rank_changes_only_at_initial is True
        # functools.wraps metadata: name, qualname, and the unwrap chain
        assert marked.__name__ == "key"
        assert marked.__qualname__.endswith("Ranker.key")
        assert marked.__wrapped__ is bound

    def test_partial_is_marked_in_place(self):
        """partial objects accept attribute assignment, so no wrapper
        (and no call overhead) is needed."""
        def keyed(osm, scale):
            return osm.age * scale

        part = functools.partial(keyed, scale=2)
        marked = rank_stable_in_flight(part)
        assert marked is part
        assert marked.rank_changes_only_at_initial is True

    def test_wrapper_delegates(self):
        class FakeOsm:
            age = 7

        marked = rank_stable_in_flight(Ranker().key)
        assert marked(FakeOsm()) == 7

    def test_effectcheck_sees_through_the_wrapper(self):
        """inspect.unwrap must reach the real function, so EFF002 can
        verify the mark against real source — not the wrapper shell."""
        import inspect

        bound = Ranker().key
        marked = rank_stable_in_flight(bound)
        assert inspect.unwrap(marked) is bound


class TestBuiltinRankings:
    def test_builtin_rankings_carry_the_mark(self):
        assert age_rank.rank_changes_only_at_initial is True
        assert operation_seq_rank.rank_changes_only_at_initial is True

    def test_director_add_stamps_the_breadcrumb(self):
        from repro.analysis.registry import build_spec

        spec = build_spec("pipeline5")
        director = Director(deadlock_check=False)
        director.add(OperationStateMachine(spec))
        assert spec.analysis_rank_key is director.rank_key
