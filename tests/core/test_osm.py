"""Tests for MachineSpec and OperationStateMachine."""

import pytest

from repro.core import (
    ALWAYS,
    Allocate,
    Condition,
    MachineSpec,
    OperationStateMachine,
    SlotManager,
    SpecError,
    TokenError,
)


class TestMachineSpec:
    def test_duplicate_initial_state_rejected(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        with pytest.raises(SpecError, match="two initial states"):
            spec.state("J", initial=True)

    def test_edge_to_unknown_state_rejected(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        with pytest.raises(SpecError, match="unknown state"):
            spec.edge("I", "missing", ALWAYS)

    def test_validate_requires_initial(self):
        spec = MachineSpec("m")
        spec.state("A")
        with pytest.raises(SpecError, match="no initial state"):
            spec.validate()

    def test_validate_rejects_unreachable_states(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("A")
        spec.state("Island")
        spec.edge("I", "A", ALWAYS)
        with pytest.raises(SpecError, match="unreachable"):
            spec.validate()

    def test_state_is_idempotent(self):
        spec = MachineSpec("m")
        first = spec.state("I", initial=True)
        again = spec.state("I")
        assert first is again

    def test_out_edges_sorted_by_priority(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("A")
        low = spec.edge("I", "A", ALWAYS, priority=1)
        high = spec.edge("I", "A", ALWAYS, priority=9)
        mid = spec.edge("I", "A", ALWAYS, priority=5)
        assert spec.states["I"].out_edges == [high, mid, low]

    def test_equal_priority_keeps_declaration_order(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("A")
        first = spec.edge("I", "A", ALWAYS, label="first")
        second = spec.edge("I", "A", ALWAYS, label="second")
        assert spec.states["I"].out_edges == [first, second]

    def test_instantiation_requires_initial(self):
        spec = MachineSpec("m")
        spec.state("A")
        with pytest.raises(SpecError):
            OperationStateMachine(spec)


class TestOperationStateMachine:
    def _simple(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S")
        manager = SlotManager("m_s")
        spec.edge("I", "S", Condition([Allocate(manager)]))
        from repro.core import Release

        spec.edge("S", "I", Condition([Release("m_s")]))
        return spec, manager

    def test_age_stamped_on_leaving_initial(self):
        spec, _ = self._simple()
        osm = OperationStateMachine(spec)
        assert osm.age == -1
        osm.try_transition(17)
        assert osm.age == 17

    def test_age_and_operation_cleared_on_return_to_initial(self):
        spec, _ = self._simple()
        osm = OperationStateMachine(spec)
        osm.try_transition(1)
        osm.operation = object()
        osm.try_transition(2)
        assert osm.in_initial
        assert osm.operation is None
        assert osm.age == -1

    def test_return_to_initial_with_tokens_is_a_model_bug(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S")
        manager = SlotManager("m_s")
        spec.edge("I", "S", Condition([Allocate(manager)]))
        spec.edge("S", "I", ALWAYS)  # forgets to release!
        osm = OperationStateMachine(spec)
        osm.try_transition(0)
        with pytest.raises(TokenError, match="still holding"):
            osm.try_transition(1)

    def test_action_and_on_enter_hooks_fire_in_order(self):
        calls = []
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S", on_enter=lambda o: calls.append("enter"))
        spec.edge("I", "S", ALWAYS, action=lambda o: calls.append("action"))
        osm = OperationStateMachine(spec)
        osm.try_transition(0)
        assert calls == ["action", "enter"]

    def test_token_accessor(self):
        spec, manager = self._simple()
        osm = OperationStateMachine(spec)
        with pytest.raises(TokenError):
            osm.token("m_s")
        osm.try_transition(0)
        assert osm.token("m_s") is manager.token
        assert osm.holds("m_s")
        assert osm.slot_of(manager.token) == "m_s"

    def test_at_most_one_transition_per_call(self):
        spec, manager = self._simple()
        osm = OperationStateMachine(spec)
        edge = osm.try_transition(0)
        assert edge.dst.name == "S"  # did not continue S -> I in one call

    def test_unique_names(self):
        spec, _ = self._simple()
        a, b = OperationStateMachine(spec), OperationStateMachine(spec)
        assert a.name != b.name
        assert a.serial != b.serial
