"""Codegen-fallback accounting: the edge compiler must count (never
hide) every probe that falls back to the interpreter, and the counts
must flow through ``SimulationStats`` into the bench row.

The fixture plants a deliberately uncompilable primitive
(``compilable = False``) so the fallback path is exercised on purpose.
"""

import json

from repro.cli import main
from repro.core import (
    Allocate,
    Condition,
    MachineSpec,
    Release,
    SlotManager,
    compile_edge_probe,
)
from repro.core.osm import OperationStateMachine
from repro.core.primitives import Primitive
from repro.core.stats import SimulationStats


class Uncompilable(Primitive):
    """Opts out of codegen; probe itself is protocol-abiding."""

    kind = "uncompilable"
    compilable = False

    def probe(self, osm, txn) -> bool:
        return True

    def __repr__(self):
        return "Uncompilable()"


def spec_with_optout() -> MachineSpec:
    stage = SlotManager("S")
    spec = MachineSpec("fallback")
    spec.state("I", initial=True)
    spec.state("P")
    spec.edge("I", "P", Condition([Uncompilable(), Allocate(stage)]),
              label="slow")
    spec.edge("P", "I", Condition([Release("S")]), label="retire")
    return spec


class TestCompileStats:
    def test_optout_primitive_is_counted_with_reason(self):
        spec = spec_with_optout()
        for state in spec.states.values():
            state.probe_plan()
        stats = spec.compile_stats
        assert stats.compiled == 1          # the pure-Release retire edge
        assert stats.fallbacks == 1
        [(qualname, reason)] = stats.fallback_edges
        assert qualname == "slow@0"
        assert reason.startswith("opt-out")

    def test_rebuilding_a_plan_does_not_double_count(self):
        spec = spec_with_optout()
        for _ in range(3):
            for state in spec.states.values():
                state._plan = None
                state.probe_plan()
        assert spec.compile_stats.fallbacks == 1
        assert spec.compile_stats.compiled == 1

    def test_fallback_probe_semantics_match_interpreted(self):
        spec = spec_with_optout()
        osm = OperationStateMachine(spec)
        assert osm.try_transition(0) is not None
        assert osm.current.name == "P"
        assert osm.holds("S")

    def test_compile_edge_probe_records_into_spec(self):
        spec = spec_with_optout()
        edge = next(e for e in spec.edges if e.qualname == "slow@0")
        compile_edge_probe(edge, spec)
        assert spec.compile_stats.edges["slow@0"] is not None

    def test_to_dict_shape(self):
        spec = spec_with_optout()
        for state in spec.states.values():
            state.probe_plan()
        payload = spec.compile_stats.to_dict()
        assert payload["compiled"] == 1
        assert payload["fallbacks"] == 1
        assert payload["fallback_edges"] == [
            {"edge": "slow@0", "reason": payload["fallback_edges"][0]["reason"]}
        ]


class TestStatsAbsorption:
    def test_absorb_accumulates(self):
        spec = spec_with_optout()
        for state in spec.states.values():
            state.probe_plan()
        stats = SimulationStats()
        stats.absorb_compile_stats(spec)
        assert stats.compiled_probes == 1
        assert stats.probe_fallbacks == 1
        assert stats.fallback_edges == [("slow@0", spec.compile_stats.fallback_edges[0][1])]

    def test_summary_mentions_fallbacks(self):
        spec = spec_with_optout()
        for state in spec.states.values():
            state.probe_plan()
        stats = SimulationStats()
        stats.absorb_compile_stats(spec)
        summary = stats.summary()
        assert "compiled probes  : 1" in summary
        assert "probe fallbacks  : 1" in summary

    def test_specless_absorb_is_a_no_op(self):
        stats = SimulationStats()
        stats.absorb_compile_stats(object())
        assert stats.compiled_probes == 0 and stats.probe_fallbacks == 0


class TestBenchSurface:
    def test_bench_json_row_carries_probe_counts(self, capsys):
        assert main(["bench", "--model", "pipeline5", "--quick",
                     "--json"]) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["compiled_probes"] > 0
        assert row["probe_fallbacks"] == 0
        assert row["fallback_edges"] == []
