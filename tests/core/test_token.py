"""Unit tests for tokens and identifiers."""

from repro.core import SlotManager, Token, TokenIdentifier
from repro.core.token import resolve_identifier


class TestToken:
    def test_new_token_is_free(self):
        manager = SlotManager("m")
        token = Token(manager, "t")
        assert token.is_free
        assert token.holder is None

    def test_token_carries_index_and_value(self):
        manager = SlotManager("m")
        token = Token(manager, "t", index=3, value=42)
        assert token.index == 3
        assert token.value == 42

    def test_held_token_not_free(self):
        manager = SlotManager("m")
        manager.token.holder = object()
        assert not manager.token.is_free


class TestTokenIdentifier:
    def test_equality_by_kind_and_key(self):
        assert TokenIdentifier("reg", 3) == TokenIdentifier("reg", 3)
        assert TokenIdentifier("reg", 3) != TokenIdentifier("reg", 4)
        assert TokenIdentifier("reg", 3) != TokenIdentifier("slot", 3)

    def test_hashable(self):
        idents = {TokenIdentifier("reg", 1), TokenIdentifier("reg", 1)}
        assert len(idents) == 1

    def test_not_equal_to_plain_values(self):
        assert TokenIdentifier("reg", 3) != ("reg", 3)


class TestResolveIdentifier:
    def test_plain_value_passes_through(self):
        assert resolve_identifier(7, None) == 7
        assert resolve_identifier("name", None) == "name"
        assert resolve_identifier(None, None) is None

    def test_callable_is_applied_to_osm(self):
        marker = object()
        assert resolve_identifier(lambda osm: osm, marker) is marker

    def test_callable_may_return_none(self):
        assert resolve_identifier(lambda osm: None, object()) is None
