"""Tests for the four transaction primitives and condition conjunction."""


from repro.core import (
    ALWAYS,
    Allocate,
    AllocateMany,
    Condition,
    Guard,
    Inquire,
    MachineSpec,
    OperationStateMachine,
    PoolManager,
    RegisterFileManager,
    Release,
    ResetManager,
    SlotManager,
)


def _osm_in(spec_builder):
    spec = MachineSpec("t")
    spec.state("I", initial=True)
    spec.state("S")
    spec_builder(spec)
    return OperationStateMachine(spec)


class _Payload:
    def __init__(self, srcs=(), dsts=()):
        class Instr:
            src_regs = tuple(srcs)
            dst_regs = tuple(dsts)

        self.instr = Instr()
        self.seq = 0


class TestAllocate:
    def test_static_none_identifier_reaches_manager(self):
        """A static None must NOT be vacuous (the reset-edge inquiry bug)."""
        reset = ResetManager()
        osm = _osm_in(lambda s: s.edge("I", "S", Condition([Inquire(reset, None)])))
        assert osm.try_transition(0) is None  # reset manager rejects normal OSMs

    def test_callable_returning_none_is_vacuous(self):
        manager = SlotManager("m")
        manager.token.holder = object()  # would fail if actually requested
        osm = _osm_in(
            lambda s: s.edge("I", "S", Condition([Allocate(manager, ident=lambda o: None)]))
        )
        assert osm.try_transition(0) is not None
        assert "m" not in osm.token_buffer

    def test_custom_slot_name(self):
        manager = SlotManager("m")
        osm = _osm_in(lambda s: s.edge("I", "S", Condition([Allocate(manager, slot="unit")])))
        osm.try_transition(0)
        assert "unit" in osm.token_buffer


class TestAllocateMany:
    def test_grants_one_token_per_identifier(self):
        class Backing:
            def read(self, r):
                return 0

            def write(self, r, v):
                pass

        regfile = RegisterFileManager("r", 8, Backing())
        osm = _osm_in(
            lambda s: s.edge(
                "I", "S",
                Condition([AllocateMany(regfile, lambda o: o.operation.instr.dst_regs, "upd")]),
            )
        )
        osm.operation = _Payload(dsts=(1, 5))
        assert osm.try_transition(0) is not None
        assert set(osm.token_buffer) == {"upd0", "upd1"}
        assert regfile.pending_writer(1) is osm
        assert regfile.pending_writer(5) is osm

    def test_empty_identifier_list_is_vacuous(self):
        pool = PoolManager("p", 1)
        osm = _osm_in(
            lambda s: s.edge("I", "S", Condition([AllocateMany(pool, lambda o: (), "x")]))
        )
        assert osm.try_transition(0) is not None
        assert osm.token_buffer == {}


class TestInquire:
    def test_tuple_identifier_requires_all(self):
        class Backing:
            def read(self, r):
                return 0

            def write(self, r, v):
                pass

        regfile = RegisterFileManager("r", 8, Backing())
        holder = object()
        regfile._writers[2].append(holder)  # simulate an outstanding writer
        osm = _osm_in(
            lambda s: s.edge("I", "S", Condition([Inquire(regfile, lambda o: (1, 2))]))
        )
        assert osm.try_transition(0) is None
        regfile._writers[2].clear()
        assert osm.try_transition(1) is not None


class TestReleaseVacuous:
    def test_release_of_empty_slot_succeeds(self):
        osm = _osm_in(lambda s: s.edge("I", "S", Condition([Release("not_held")])))
        assert osm.try_transition(0) is not None


class TestGuard:
    def test_guard_is_pure_predicate(self):
        flag = {"open": False}
        osm = _osm_in(
            lambda s: s.edge("I", "S", Condition([Guard(lambda o: flag["open"], "gate")]))
        )
        assert osm.try_transition(0) is None
        flag["open"] = True
        assert osm.try_transition(1) is not None


class TestCondition:
    def test_always_is_trivially_satisfied(self):
        osm = _osm_in(lambda s: s.edge("I", "S", ALWAYS))
        assert osm.try_transition(0) is not None

    def test_conjunction_operator(self):
        a, b = SlotManager("a"), SlotManager("b")
        condition = Allocate(a) & Allocate(b)
        assert isinstance(condition, Condition)
        assert len(condition.primitives) == 2
        condition3 = condition & Allocate(SlotManager("c"))
        assert len(condition3.primitives) == 3

    def test_priority_selects_among_satisfied_edges(self):
        """Parallel edges realise disjunction; highest priority wins."""
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("Hi")
        spec.state("Lo")
        spec.edge("I", "Lo", ALWAYS, priority=1)
        spec.edge("I", "Hi", ALWAYS, priority=5)
        osm = OperationStateMachine(spec)
        edge = osm.try_transition(0)
        assert edge.dst.name == "Hi"

    def test_lower_priority_taken_when_higher_fails(self):
        taken = SlotManager("taken")
        taken.token.holder = object()
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("Hi")
        spec.state("Lo")
        spec.edge("I", "Hi", Condition([Allocate(taken)]), priority=5)
        spec.edge("I", "Lo", ALWAYS, priority=1)
        osm = OperationStateMachine(spec)
        assert osm.try_transition(0).dst.name == "Lo"

    def test_inquiry_counter_increments(self):
        reset = ResetManager()
        reset.doom_now_target = None
        manager = SlotManager("m")
        osm = _osm_in(lambda s: s.edge("I", "S", Condition([Inquire(manager, "x")])))
        before = manager.n_inquiries
        osm.try_transition(0)
        assert manager.n_inquiries == before + 1
