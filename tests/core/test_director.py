"""Tests for the director's Figure-3 scheduling algorithm."""

import pytest

from repro.core import (
    ALWAYS,
    Allocate,
    Condition,
    Director,
    MachineSpec,
    OperationStateMachine,
    Release,
    SchedulingDeadlockError,
    SlotManager,
)
from repro.core.director import age_rank, operation_seq_rank


def _ring_spec(managers):
    """I -> A -> B -> I where each state holds one slot token."""
    spec = MachineSpec("ring")
    spec.state("I", initial=True)
    spec.state("A")
    spec.state("B")
    spec.edge("I", "A", Condition([Allocate(managers["a"])]))
    spec.edge("A", "B", Condition([Allocate(managers["b"]), Release("a")]))
    spec.edge("B", "I", Condition([Release("b")]))
    spec.validate()
    return spec


@pytest.fixture()
def ring():
    managers = {"a": SlotManager("a"), "b": SlotManager("b")}
    spec = _ring_spec(managers)
    return spec, managers


class TestScheduling:
    def test_single_osm_walks_the_ring(self, ring):
        spec, managers = ring
        director = Director()
        osm = OperationStateMachine(spec)
        director.add(osm)
        states = []
        for _ in range(6):
            director.control_step()
            states.append(osm.current.name)
        assert states == ["A", "B", "I", "A", "B", "I"]

    def test_one_transition_per_osm_per_step(self, ring):
        spec, managers = ring
        director = Director()
        osm = OperationStateMachine(spec)
        director.add(osm)
        transitions = director.control_step()
        assert transitions == 1  # not A and then B in the same step

    def test_pipelined_osms_share_resources(self, ring):
        spec, managers = ring
        director = Director()
        osms = [OperationStateMachine(spec) for _ in range(3)]
        director.add(*osms)
        director.control_step()  # one OSM takes A
        occupancy = sorted(o.current.name for o in osms)
        assert occupancy == ["A", "I", "I"]
        director.control_step()  # pipeline: A->B frees A for the next
        occupancy = sorted(o.current.name for o in osms)
        assert occupancy == ["A", "B", "I"]

    def test_deterministic_across_runs(self, ring):
        def run():
            managers = {"a": SlotManager("a"), "b": SlotManager("b")}
            spec = _ring_spec(managers)
            director = Director()
            osms = [OperationStateMachine(spec) for _ in range(4)]
            director.add(*osms)
            trace = []
            director.trace = lambda clk, osm, edge: trace.append((clk, edge.label))
            for _ in range(12):
                director.control_step()
            return trace

        assert run() == run()


class TestRestart:
    def _senior_junior_scenario(self, restart):
        """A senior OSM blocked on a resource the junior frees this step."""
        resource = SlotManager("res")
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("Wait")
        spec.state("Got")
        spec.state("Hold")
        # seniors go I->Wait->Got (Got needs the resource)
        spec.edge("I", "Wait", ALWAYS)
        spec.edge("Wait", "Got", Condition([Allocate(resource)]))
        senior = OperationStateMachine(spec)

        spec2 = MachineSpec("m2")
        spec2.state("I", initial=True)
        spec2.state("Hold")
        spec2.state("Done")
        spec2.edge("I", "Hold", Condition([Allocate(resource, slot="res")]))
        spec2.edge("Hold", "Done", Condition([Release("res")]))
        junior = OperationStateMachine(spec2)

        director = Director(rank_key=lambda o: 0 if o is senior else 1,
                            restart=restart, deadlock_check=False)
        director.add(senior, junior)
        # step 1: senior -> Wait; junior grabs the resource
        director.control_step()
        assert senior.current.name == "Wait"
        assert junior.current.name == "Hold"
        # step 2: senior (ranked first) fails; junior releases.
        director.control_step()
        return senior

    def test_restart_lets_senior_catch_freed_resource(self):
        senior = self._senior_junior_scenario(restart=True)
        assert senior.current.name == "Got"  # same control step

    def test_single_pass_defers_senior_one_cycle(self):
        senior = self._senior_junior_scenario(restart=False)
        assert senior.current.name == "Wait"


class TestRestartStatsAudit:
    """Stats/age stamping audit under ``restart=True``.

    The restart loop revisits OSMs after every commit; these tests pin
    that revisiting never double-counts a transition, never lets one OSM
    transition twice in a control step, and never re-stamps an in-flight
    operation's age.
    """

    @staticmethod
    def _senior_releases_for_junior(restart):
        """Senior releases a resource the junior allocates, same step.

        Rank order already serves the senior first, so the junior sees
        the freed resource within a single pass — the configuration where
        ``restart=False`` (the case-study optimisation) must be exactly
        equivalent to the general algorithm.
        """
        resource = SlotManager("res")
        spec_senior = MachineSpec("senior")
        spec_senior.state("I", initial=True)
        spec_senior.state("Hold")
        spec_senior.state("Done")
        spec_senior.edge("I", "Hold", Condition([Allocate(resource, slot="res")]))
        spec_senior.edge("Hold", "Done", Condition([Release("res")]))
        spec_senior.edge("Done", "I", ALWAYS)
        senior = OperationStateMachine(spec_senior)

        spec_junior = MachineSpec("junior")
        spec_junior.state("I", initial=True)
        spec_junior.state("Need")
        spec_junior.state("Out")
        spec_junior.edge("I", "Need", Condition([Allocate(resource, slot="res")]))
        spec_junior.edge("Need", "Out", Condition([Release("res")]))
        spec_junior.edge("Out", "I", ALWAYS)
        junior = OperationStateMachine(spec_junior)

        director = Director(rank_key=lambda o: 0 if o.spec.name == "senior" else 1,
                            restart=restart, deadlock_check=False)
        director.add(senior, junior)
        return director, senior, junior

    def test_restart_equivalent_when_senior_frees_junior(self):
        runs = []
        for restart in (True, False):
            director, senior, junior = self._senior_releases_for_junior(restart)
            trace = []
            director.trace = lambda clk, osm, edge, t=trace: t.append(
                (clk, osm.spec.name, edge.label))
            history = []
            per_step = []
            for _ in range(8):
                per_step.append(director.control_step())
                history.append((senior.current.name, junior.current.name))
            runs.append((history, per_step, trace, director.stats.transitions))
        assert runs[0] == runs[1]
        # sanity: the interesting hand-off actually happened — the junior
        # allocated in the same step the senior released
        history = runs[0][0]
        assert ("Done", "Need") in history

    def test_no_double_count_or_double_transition_under_restart(self):
        # junior-frees-senior: the configuration where restart genuinely
        # revisits the senior after a commit
        resource = SlotManager("res")
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("Wait")
        spec.state("Got")
        spec.edge("I", "Wait", ALWAYS)
        spec.edge("Wait", "Got", Condition([Allocate(resource)]))
        senior = OperationStateMachine(spec)

        spec2 = MachineSpec("m2")
        spec2.state("I", initial=True)
        spec2.state("Hold")
        spec2.state("Done")
        spec2.edge("I", "Hold", Condition([Allocate(resource, slot="res")]))
        spec2.edge("Hold", "Done", Condition([Release("res")]))
        junior = OperationStateMachine(spec2)

        director = Director(rank_key=lambda o: 0 if o is senior else 1,
                            restart=True, deadlock_check=False)
        director.add(senior, junior)
        trace = []
        director.trace = lambda clk, osm, edge: trace.append((clk, id(osm)))
        total = 0
        for _ in range(4):
            count = director.control_step()
            total += count
            # no OSM may transition twice in one control step
            this_step = [t for t in trace if t[0] == director.clock - 1]
            assert len(this_step) == len(set(this_step))
        assert senior.current.name == "Got"  # restart picked up the release
        # reported counts match the trace exactly: no double-counting
        assert total == len(trace) == director.stats.transitions

    def test_age_stamped_once_per_occupancy_under_restart(self):
        director, senior, junior = self._senior_releases_for_junior(restart=True)
        ages = []
        for _ in range(8):
            director.control_step()
            ages.append(senior.age)
        # age is stamped when leaving I and must stay fixed while in
        # flight (restart revisits must not re-stamp it with a later clock):
        # within each contiguous in-flight span the stamp is constant
        assert any(a >= 0 for a in ages)
        for previous, current in zip(ages, ages[1:]):
            if previous >= 0 and current >= 0:
                assert current == previous


class TestRanking:
    def test_age_rank_orders_idle_last(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S")
        spec.edge("I", "S", ALWAYS)
        active = OperationStateMachine(spec)
        idle = OperationStateMachine(spec)
        active.age = 5
        assert age_rank(active) < age_rank(idle)

    def test_seq_rank_follows_program_order(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S")
        spec.edge("I", "S", ALWAYS)
        older, younger = OperationStateMachine(spec), OperationStateMachine(spec)

        class Op:
            def __init__(self, seq):
                self.seq = seq

        # pool serial order says 'older' was created first, but the
        # operation sequence says otherwise
        older.operation = Op(10)
        younger.operation = Op(3)
        assert operation_seq_rank(younger) < operation_seq_rank(older)


class TestDeadlockDetection:
    def test_genuine_cyclic_wait_aborts(self):
        """Two OSMs each hold what the other needs: a cyclic pipeline."""
        a, b = SlotManager("a"), SlotManager("b")

        def cross_spec(name, first, second, first_name):
            spec = MachineSpec(name)
            spec.state("I", initial=True)
            spec.state("H")
            spec.state("Both")
            spec.edge("I", "H", Condition([Allocate(first, slot=first_name)]))
            spec.edge("H", "Both", Condition([Allocate(second)]))
            return spec

        osm1 = OperationStateMachine(cross_spec("s1", a, b, "a"))
        osm2 = OperationStateMachine(cross_spec("s2", b, a, "b"))
        director = Director(deadlock_check=True)
        director.add(osm1, osm2)
        director.control_step()  # both grab their first resource
        assert osm1.current.name == "H" and osm2.current.name == "H"
        with pytest.raises(SchedulingDeadlockError):
            director.control_step()

    def test_plain_stall_does_not_abort(self):
        """Everyone waiting behind one hardware hold is NOT a deadlock."""
        res = SlotManager("res")
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S")
        spec.edge("I", "S", Condition([Allocate(res)]))
        spec.edge("S", "I", Condition([Release("res")]))
        holder, waiter = OperationStateMachine(spec), OperationStateMachine(spec)
        director = Director(deadlock_check=True)
        director.add(holder, waiter)
        director.control_step()
        res.hold_release = True  # hardware variable latency
        for _ in range(5):
            director.control_step()  # must not raise
        res.hold_release = False
        director.control_step()


class TestVersionSkipping:
    def test_skip_does_not_change_behaviour(self, ring):
        """The observable-version optimisation is decision-neutral."""
        spec, managers = ring
        director = Director()
        osms = [OperationStateMachine(spec) for _ in range(3)]
        director.add(*osms)
        history = []
        for _ in range(10):
            director.control_step()
            history.append(tuple(o.current.name for o in osms))
        # compare against a fresh run with skipping effectively disabled
        managers2 = {"a": SlotManager("a"), "b": SlotManager("b")}
        spec2 = _ring_spec(managers2)
        director2 = Director()
        osms2 = [OperationStateMachine(spec2) for _ in range(3)]
        director2.add(*osms2)
        history2 = []
        for _ in range(10):
            director2.version += 1  # force full probing every step
            director2.control_step()
            history2.append(tuple(o.current.name for o in osms2))
        assert history == history2
