"""Tests for the two simulation kernels."""

import pytest

from repro.core import (
    ALWAYS,
    Allocate,
    Condition,
    CycleDrivenKernel,
    Director,
    MachineSpec,
    OperationStateMachine,
    Release,
    SimulationError,
    SimulationKernel,
    SlotManager,
)
from repro.de.module import HardwareModule


class _Recorder(HardwareModule):
    def __init__(self, name, log):
        super().__init__(name)
        self.log = log

    def begin_cycle(self, cycle):
        self.log.append((self.name, "begin", cycle))

    def end_cycle(self, cycle):
        self.log.append((self.name, "end", cycle))


def _one_shot_model():
    """An OSM that makes exactly 3 transitions then stays in I."""
    spec = MachineSpec("m")
    spec.state("I", initial=True)
    spec.state("A")
    spec.state("B")
    manager = SlotManager("s")
    done = {"count": 0}

    def fetch_gate(osm):
        return done["count"] == 0

    from repro.core import Guard

    spec.edge("I", "A", Condition([Guard(fetch_gate, "once"), Allocate(manager)]))
    spec.edge("A", "B", ALWAYS)
    spec.edge("B", "I", Condition([Release("s")]),
              action=lambda o: done.__setitem__("count", 1))
    osm = OperationStateMachine(spec)
    director = Director()
    director.add(osm)
    return director, done


class TestCycleDrivenKernel:
    def test_hook_ordering(self):
        log = []
        director, done = _one_shot_model()
        kernel = CycleDrivenKernel(director, [_Recorder("m1", log), _Recorder("m2", log)])
        kernel.step()
        assert log == [
            ("m1", "begin", 0), ("m2", "begin", 0),
            ("m1", "end", 0), ("m2", "end", 0),
        ]

    def test_stop_condition(self):
        director, done = _one_shot_model()
        kernel = CycleDrivenKernel(director)
        kernel.stop_condition = lambda: done["count"] == 1
        stats = kernel.run(100)
        assert done["count"] == 1
        assert stats.cycles == 3

    def test_max_cycles_exceeded_raises(self):
        director, done = _one_shot_model()
        kernel = CycleDrivenKernel(director)
        kernel.stop_condition = lambda: False
        with pytest.raises(SimulationError, match="did not terminate"):
            kernel.run(5)

    def test_stats_count_cycles_and_transitions(self):
        director, done = _one_shot_model()
        kernel = CycleDrivenKernel(director)
        kernel.stop_condition = lambda: done["count"] == 1
        stats = kernel.run(100)
        assert stats.transitions == 3

    def test_modules_get_notify_bound(self):
        director, _ = _one_shot_model()
        module = _Recorder("m", [])
        kernel = CycleDrivenKernel(director, [module])
        assert module.notify == director.notify
        late = _Recorder("late", [])
        kernel.add_module(late)
        assert late.notify == director.notify


class TestSimulationKernel:
    def test_matches_cycle_driven_timing(self):
        director1, done1 = _one_shot_model()
        cd = CycleDrivenKernel(director1)
        cd.stop_condition = lambda: done1["count"] == 1
        cd_stats = cd.run(100)

        director2, done2 = _one_shot_model()
        de = SimulationKernel(director2)
        de.stop_condition = lambda: done2["count"] == 1
        de_stats = de.run(100)
        assert de_stats.cycles == cd_stats.cycles

    def test_hardware_events_run_between_edges(self):
        director, done = _one_shot_model()
        kernel = SimulationKernel(director)
        kernel.stop_condition = lambda: done["count"] == 1
        fired = []
        kernel.scheduler.schedule(0, lambda: fired.append(kernel.scheduler.now))
        kernel.run(100)
        assert fired == [0]

    def test_control_step_must_not_schedule_events(self):
        """Paper Fig. 4: the control step finishes in zero DE time."""
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S")
        director = Director()
        kernel = SimulationKernel(director)

        def bad_action(osm):
            kernel.scheduler.schedule(1, lambda: None)

        spec.edge("I", "S", ALWAYS, action=bad_action)
        spec.edge("S", "I", ALWAYS)
        director.add(OperationStateMachine(spec))
        kernel.stop_condition = lambda: False
        with pytest.raises(SimulationError, match="zero time"):
            kernel.run(10)
