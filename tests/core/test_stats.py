"""Tests for simulation statistics."""

import time

import pytest

from repro.core import SimulationStats


class TestSimulationStats:
    def test_initial_values(self):
        stats = SimulationStats()
        assert stats.cycles == 0
        assert stats.cycles_per_second == 0.0
        assert stats.ipc == 0.0

    def test_ipc(self):
        stats = SimulationStats()
        stats.cycles = 100
        stats.instructions = 50
        assert stats.ipc == 0.5

    def test_timer_accumulates(self):
        stats = SimulationStats()
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        first = stats.wall_seconds
        assert first > 0
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        assert stats.wall_seconds > first

    def test_stop_without_start_is_harmless(self):
        stats = SimulationStats()
        stats.stop_timer()
        assert stats.wall_seconds == 0.0

    def test_cycles_per_second(self):
        stats = SimulationStats()
        stats.cycles = 1000
        stats.wall_seconds = 2.0
        assert stats.cycles_per_second == 500.0

    def test_occupancy_recording(self):
        class FakeState:
            name = "E"

        class FakeOsm:
            current = FakeState()

        stats = SimulationStats()
        stats.record_occupancy([FakeOsm(), FakeOsm()])
        stats.record_occupancy([FakeOsm()])
        assert stats.state_occupancy == {"E": 3}

    def test_summary_mentions_key_figures(self):
        stats = SimulationStats()
        stats.cycles = 10
        stats.instructions = 5
        text = stats.summary()
        assert "cycles" in text and "IPC" in text


class TestPhaseAttribution:
    def test_record_and_accumulate(self):
        stats = SimulationStats()
        stats.record_phase("assemble", 0.5)
        stats.record_phase("assemble", 0.25)
        assert stats.phase_seconds == {"assemble": 0.75}

    def test_time_phase_context_manager(self):
        stats = SimulationStats()
        with stats.time_phase("build"):
            pass
        assert stats.phase_seconds["build"] >= 0.0
        with stats.time_phase("build"):
            pass
        assert set(stats.phase_seconds) == {"build"}

    def test_stop_timer_attributes_phase(self):
        stats = SimulationStats()
        stats.start_timer()
        stats.stop_timer(phase="simulate")
        assert stats.wall_seconds == pytest.approx(
            stats.phase_seconds["simulate"])
        # stopping without a running timer is a no-op
        stats.stop_timer(phase="simulate")
        assert len(stats.phase_seconds) == 1

    def test_transitions_per_second(self):
        stats = SimulationStats()
        stats.transitions = 300
        stats.wall_seconds = 2.0
        assert stats.transitions_per_second == 150.0
        assert SimulationStats().transitions_per_second == 0.0

    def test_summary_includes_phases(self):
        stats = SimulationStats()
        stats.record_phase("simulate", 1.0)
        assert "phase simulate" in stats.summary()
