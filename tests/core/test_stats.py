"""Tests for simulation statistics."""

import time

from repro.core import SimulationStats


class TestSimulationStats:
    def test_initial_values(self):
        stats = SimulationStats()
        assert stats.cycles == 0
        assert stats.cycles_per_second == 0.0
        assert stats.ipc == 0.0

    def test_ipc(self):
        stats = SimulationStats()
        stats.cycles = 100
        stats.instructions = 50
        assert stats.ipc == 0.5

    def test_timer_accumulates(self):
        stats = SimulationStats()
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        first = stats.wall_seconds
        assert first > 0
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        assert stats.wall_seconds > first

    def test_stop_without_start_is_harmless(self):
        stats = SimulationStats()
        stats.stop_timer()
        assert stats.wall_seconds == 0.0

    def test_cycles_per_second(self):
        stats = SimulationStats()
        stats.cycles = 1000
        stats.wall_seconds = 2.0
        assert stats.cycles_per_second == 500.0

    def test_occupancy_recording(self):
        class FakeState:
            name = "E"

        class FakeOsm:
            current = FakeState()

        stats = SimulationStats()
        stats.record_occupancy([FakeOsm(), FakeOsm()])
        stats.record_occupancy([FakeOsm()])
        assert stats.state_occupancy == {"E": 3}

    def test_summary_mentions_key_figures(self):
        stats = SimulationStats()
        stats.cycles = 10
        stats.instructions = 5
        text = stats.summary()
        assert "cycles" in text and "IPC" in text
