"""Tests for simulation statistics."""

import time

import pytest

from repro.core import SimulationStats


class TestSimulationStats:
    def test_initial_values(self):
        stats = SimulationStats()
        assert stats.cycles == 0
        assert stats.cycles_per_second == 0.0
        assert stats.ipc == 0.0

    def test_ipc(self):
        stats = SimulationStats()
        stats.cycles = 100
        stats.instructions = 50
        assert stats.ipc == 0.5

    def test_timer_accumulates(self):
        stats = SimulationStats()
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        first = stats.wall_seconds
        assert first > 0
        stats.start_timer()
        time.sleep(0.01)
        stats.stop_timer()
        assert stats.wall_seconds > first

    def test_stop_without_start_is_harmless(self):
        stats = SimulationStats()
        stats.stop_timer()
        assert stats.wall_seconds == 0.0

    def test_cycles_per_second(self):
        stats = SimulationStats()
        stats.cycles = 1000
        stats.wall_seconds = 2.0
        assert stats.cycles_per_second == 500.0

    def test_occupancy_recording(self):
        class FakeState:
            name = "E"

        class FakeOsm:
            current = FakeState()

        stats = SimulationStats()
        stats.record_occupancy([FakeOsm(), FakeOsm()])
        stats.record_occupancy([FakeOsm()])
        assert stats.state_occupancy == {"E": 3}

    def test_summary_mentions_key_figures(self):
        stats = SimulationStats()
        stats.cycles = 10
        stats.instructions = 5
        text = stats.summary()
        assert "cycles" in text and "IPC" in text


class TestPhaseAttribution:
    def test_record_and_accumulate(self):
        stats = SimulationStats()
        stats.record_phase("assemble", 0.5)
        stats.record_phase("assemble", 0.25)
        assert stats.phase_seconds == {"assemble": 0.75}

    def test_time_phase_context_manager(self):
        stats = SimulationStats()
        with stats.time_phase("build"):
            pass
        assert stats.phase_seconds["build"] >= 0.0
        with stats.time_phase("build"):
            pass
        assert set(stats.phase_seconds) == {"build"}

    def test_stop_timer_attributes_phase(self):
        stats = SimulationStats()
        stats.start_timer()
        stats.stop_timer(phase="simulate")
        assert stats.wall_seconds == pytest.approx(
            stats.phase_seconds["simulate"])
        # stopping without a running timer is a no-op
        stats.stop_timer(phase="simulate")
        assert len(stats.phase_seconds) == 1

    def test_stop_timer_reports_whether_it_stopped(self):
        stats = SimulationStats()
        assert stats.stop_timer() is False
        stats.start_timer()
        assert stats.stop_timer() is True
        assert stats.stop_timer() is False

    def test_double_start_raises(self):
        """Overlapping start_timer used to silently drop the running
        interval; it is now an explicit error."""
        stats = SimulationStats()
        stats.start_timer()
        with pytest.raises(RuntimeError):
            stats.start_timer()
        # the original interval is still running and can be stopped
        assert stats.stop_timer() is True
        assert stats.wall_seconds > 0.0
        # and the timer is reusable after the error
        stats.start_timer()
        assert stats.stop_timer() is True

    def test_nested_time_phase_is_exclusive(self):
        """A nested phase's time must not also count toward its parent
        (the bench breakdown used to double-count verify/build)."""
        stats = SimulationStats()
        with stats.time_phase("outer"):
            time.sleep(0.02)
            with stats.time_phase("inner"):
                time.sleep(0.02)
        total = stats.phase_seconds["outer"] + stats.phase_seconds["inner"]
        assert stats.phase_seconds["inner"] >= 0.02
        assert stats.phase_seconds["outer"] >= 0.015
        # outer excludes inner: the sum is the real elapsed wall time,
        # well under the ~0.06s a double-counted inner would produce
        assert total < 0.06

    def test_nested_same_name_accumulates_once(self):
        stats = SimulationStats()
        with stats.time_phase("build"):
            time.sleep(0.01)
            with stats.time_phase("build"):
                time.sleep(0.01)
        assert 0.02 <= stats.phase_seconds["build"] < 0.04

    def test_stop_timer_inside_time_phase_is_exclusive(self):
        """A stop_timer(phase=...) interval inside an open time_phase
        block counts toward the inner phase only."""
        stats = SimulationStats()
        with stats.time_phase("harness"):
            stats.start_timer()
            time.sleep(0.02)
            stats.stop_timer(phase="simulate")
        assert stats.phase_seconds["simulate"] >= 0.02
        assert stats.phase_seconds["harness"] < 0.015

    def test_timer_started_before_phase_clamps_to_frame(self):
        """Only the part of a stop_timer interval that overlaps the open
        frame is subtracted from it."""
        stats = SimulationStats()
        stats.start_timer()
        time.sleep(0.02)
        with stats.time_phase("harness"):
            time.sleep(0.01)
            stats.stop_timer(phase="simulate")
        assert stats.phase_seconds["simulate"] >= 0.03
        # harness self-time is ~0, never negative
        assert 0.0 <= stats.phase_seconds["harness"] < 0.01

    def test_transitions_per_second(self):
        stats = SimulationStats()
        stats.transitions = 300
        stats.wall_seconds = 2.0
        assert stats.transitions_per_second == 150.0
        assert SimulationStats().transitions_per_second == 0.0

    def test_summary_includes_phases(self):
        stats = SimulationStats()
        stats.record_phase("simulate", 1.0)
        assert "phase simulate" in stats.summary()
