"""Tests for atomic transaction semantics (Section 3.3)."""

import pytest

from repro.core import (
    Allocate,
    Condition,
    Discard,
    MachineSpec,
    OperationStateMachine,
    PoolManager,
    Release,
    SlotManager,
    TokenError,
)


def _machine_with_edges(*edge_specs):
    """Build a two-state machine: I -> S with the given condition."""
    spec = MachineSpec("m")
    spec.state("I", initial=True)
    spec.state("S")
    for condition, priority in edge_specs:
        spec.edge("I", "S", condition, priority=priority)
    spec.validate()
    return OperationStateMachine(spec)


class TestAtomicity:
    def test_all_or_nothing_on_failure(self):
        free = SlotManager("free")
        taken = SlotManager("taken")
        taken.token.holder = object()
        osm = _machine_with_edges(
            (Condition([Allocate(free), Allocate(taken)]), 0)
        )
        assert osm.try_transition(0) is None
        # the first allocate must have been abandoned, not committed
        assert free.token.holder is None
        assert osm.token_buffer == {}
        assert osm.in_initial

    def test_commit_applies_everything(self):
        a, b = SlotManager("a"), SlotManager("b")
        osm = _machine_with_edges((Condition([Allocate(a), Allocate(b)]), 0))
        edge = osm.try_transition(0)
        assert edge is not None
        assert a.token.holder is osm
        assert b.token.holder is osm
        assert set(osm.token_buffer) == {"a", "b"}

    def test_simultaneous_release_and_allocate(self):
        """The D->E idiom: release the old stage while claiming the new."""
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("D")
        spec.state("E")
        m_d, m_e = SlotManager("m_d"), SlotManager("m_e")
        spec.edge("I", "D", Condition([Allocate(m_d)]))
        spec.edge("D", "E", Condition([Allocate(m_e), Release("m_d")]))
        osm = OperationStateMachine(spec)
        osm.try_transition(0)
        assert m_d.token.holder is osm
        osm.try_transition(1)
        assert m_d.token.holder is None
        assert m_e.token.holder is osm
        assert list(osm.token_buffer) == ["m_e"]

    def test_blocked_release_blocks_whole_condition(self):
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("D")
        spec.state("E")
        m_d, m_e = SlotManager("m_d"), SlotManager("m_e")
        spec.edge("I", "D", Condition([Allocate(m_d)]))
        spec.edge("D", "E", Condition([Allocate(m_e), Release("m_d")]))
        osm = OperationStateMachine(spec)
        osm.try_transition(0)
        m_d.hold_release = True  # variable latency: refuse the return
        assert osm.try_transition(1) is None
        assert m_e.token.holder is None  # allocate abandoned with it
        m_d.hold_release = False
        assert osm.try_transition(2) is not None


class TestPoolConsistency:
    def test_one_condition_cannot_get_same_token_twice(self):
        pool = PoolManager("p", 1)
        osm = _machine_with_edges(
            (Condition([Allocate(pool, slot="x"), Allocate(pool, slot="y")]), 0)
        )
        assert osm.try_transition(0) is None
        assert pool.n_free == 1

    def test_two_tokens_from_bigger_pool(self):
        pool = PoolManager("p", 2)
        osm = _machine_with_edges(
            (Condition([Allocate(pool, slot="x"), Allocate(pool, slot="y")]), 0)
        )
        assert osm.try_transition(0) is not None
        assert pool.n_free == 0
        assert osm.token_buffer["x"] is not osm.token_buffer["y"]


class TestDiscard:
    def test_discard_empties_buffer_without_permission(self):
        a = SlotManager("a")
        a.hold_release = True  # release would be refused...
        spec = MachineSpec("m")
        spec.state("I", initial=True)
        spec.state("S")
        spec.edge("I", "S", Condition([Allocate(a)]))
        spec.edge("S", "I", Condition([Discard()]))
        osm = OperationStateMachine(spec)
        osm.try_transition(0)
        assert osm.try_transition(1) is not None  # ...but discard succeeds
        assert a.token.holder is None
        assert osm.token_buffer == {}

    def test_double_release_in_one_condition_is_an_error(self):
        a = SlotManager("a")
        osm = _machine_with_edges((Condition([Allocate(a)]), 0))
        osm.try_transition(0)
        osm.spec.edge("S", "I", Condition([Release("a"), Release("a")]))
        with pytest.raises(TokenError, match="double release"):
            osm.try_transition(1)
