"""Unit tests for the built-in token managers."""

import pytest

from repro.core import (
    PoolManager,
    RegisterFileManager,
    ResetManager,
    SlotManager,
    TokenError,
)
from repro.core.transaction import Transaction


class _FakeOsm:
    """Just enough OSM surface for direct manager-level tests."""

    def __init__(self, name="osm"):
        self.name = name
        self.token_buffer = {}
        self.operation = None
        self.blocked_on = None

    def note_blocked_on(self, manager, ident):
        self.blocked_on = (manager, ident)

    def slot_of(self, token):
        for slot, held in self.token_buffer.items():
            if held is token:
                return slot
        return None


def _txn(osm):
    return Transaction(osm)


class TestSlotManager:
    def test_allocate_when_free(self):
        manager = SlotManager("s")
        osm = _FakeOsm()
        token = manager.allocate(osm, None, _txn(osm))
        assert token is manager.token

    def test_allocate_refused_when_held(self):
        manager = SlotManager("s")
        holder, requester = _FakeOsm("a"), _FakeOsm("b")
        manager.token.holder = holder
        assert manager.allocate(requester, None, _txn(requester)) is None

    def test_allocate_refused_when_tentatively_granted(self):
        manager = SlotManager("s")
        osm = _FakeOsm()
        txn = _txn(osm)
        txn.add_grant("s", manager.token)
        assert manager.allocate(osm, None, txn) is None

    def test_inquire_tracks_occupancy(self):
        manager = SlotManager("s")
        osm = _FakeOsm()
        assert manager.inquire(osm, None, _txn(osm))
        manager.token.holder = osm
        assert not manager.inquire(osm, None, _txn(osm))

    def test_release_requires_ownership(self):
        manager = SlotManager("s")
        osm = _FakeOsm()
        with pytest.raises(TokenError):
            manager.release(osm, manager.token, _txn(osm))

    def test_release_of_foreign_token_rejected(self):
        manager, other = SlotManager("s"), SlotManager("t")
        osm = _FakeOsm()
        other.token.holder = osm
        with pytest.raises(TokenError):
            manager.release(osm, other.token, _txn(osm))

    def test_hold_release_refuses(self):
        manager = SlotManager("s")
        osm = _FakeOsm()
        manager.token.holder = osm
        manager.hold_release = True
        assert manager.release(osm, manager.token, _txn(osm)) is False
        manager.hold_release = False
        assert manager.release(osm, manager.token, _txn(osm)) is True

    def test_occupant_property(self):
        manager = SlotManager("s")
        osm = _FakeOsm()
        assert manager.occupant is None
        manager.token.holder = osm
        assert manager.occupant is osm


class TestPoolManager:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            PoolManager("p", 0)

    def test_allocates_distinct_tokens(self):
        manager = PoolManager("p", 3)
        osm = _FakeOsm()
        txn = _txn(osm)
        granted = []
        for _ in range(3):
            token = manager.allocate(osm, None, txn)
            assert token is not None
            txn.add_grant(f"t{len(granted)}", token)
            granted.append(token)
        assert len({id(t) for t in granted}) == 3
        assert manager.allocate(osm, None, txn) is None

    def test_free_count(self):
        manager = PoolManager("p", 2)
        osm = _FakeOsm()
        assert manager.n_free == 2
        manager.tokens[0].holder = osm
        assert manager.n_free == 1
        assert manager.occupants == [osm]

    def test_inquire_counts_tentative_grants(self):
        manager = PoolManager("p", 1)
        osm = _FakeOsm()
        txn = _txn(osm)
        assert manager.inquire(osm, None, txn)
        txn.add_grant("t", manager.tokens[0])
        assert not manager.inquire(osm, None, txn)


class TestRegisterFileManager:
    def _backing(self):
        class Backing:
            def __init__(self):
                self.values = [0] * 8

            def read(self, reg):
                return self.values[reg]

            def write(self, reg, value):
                self.values[reg] = value

        return Backing()

    def test_update_token_pool_allows_waw_up_to_depth(self):
        """The paper's plural "register-update tokens": each register has
        a small pool, so WAW sequences overlap up to the pipeline depth."""
        manager = RegisterFileManager("r", 8, self._backing(), updates_per_reg=2)
        writers = [_FakeOsm(f"w{i}") for i in range(3)]
        granted = []
        for writer in writers[:2]:
            token = manager.allocate(writer, 3, _txn(writer))
            assert token is not None
            token.holder = writer
            manager.on_allocate_commit(writer, token)
            granted.append(token)
        # pool exhausted: the third writer must wait
        assert manager.allocate(writers[2], 3, _txn(writers[2])) is None
        assert manager.allocate(writers[2], 4, _txn(writers[2])) is not None
        # youngest writer is the pending one readers care about
        assert manager.pending_writer(3) is writers[1]
        assert manager.outstanding(3) == 2

    def test_inquire_fails_with_outstanding_update(self):
        manager = RegisterFileManager("r", 8, self._backing())
        writer, reader = _FakeOsm("w"), _FakeOsm("r")
        token = manager.allocate(writer, 2, _txn(writer))
        token.holder = writer
        manager.on_allocate_commit(writer, token)
        assert not manager.inquire(reader, 2, _txn(reader))
        assert manager.inquire(reader, 5, _txn(reader))

    def test_inquire_none_is_vacuous(self):
        manager = RegisterFileManager("r", 8, self._backing())
        assert manager.inquire(_FakeOsm(), None, _txn(_FakeOsm()))

    def test_release_writes_value_to_backing(self):
        backing = self._backing()
        manager = RegisterFileManager("r", 8, backing)
        writer = _FakeOsm("w")
        token = manager.allocate(writer, 6, _txn(writer))
        token.holder = writer
        manager.on_allocate_commit(writer, token)
        manager.on_release_commit(writer, token, 0xDEAD)
        assert backing.read(6) == 0xDEAD

    def test_release_with_none_value_skips_write(self):
        backing = self._backing()
        backing.write(1, 99)
        manager = RegisterFileManager("r", 8, backing)
        writer = _FakeOsm("w")
        token = manager.allocate(writer, 1, _txn(writer))
        token.holder = writer
        manager.on_allocate_commit(writer, token)
        manager.on_release_commit(writer, token, None)
        assert backing.read(1) == 99

    def test_max_outstanding_cap(self):
        manager = RegisterFileManager("r", 8, self._backing(), n_update_tokens=1)
        writer = _FakeOsm("w")
        token = manager.allocate(writer, 0, _txn(writer))
        token.holder = writer
        manager.on_allocate_commit(writer, token)
        assert manager.allocate(writer, 1, _txn(writer)) is None
        manager.on_release_commit(writer, token, None)
        assert manager.allocate(writer, 1, _txn(writer)) is not None

    def test_pending_writer(self):
        manager = RegisterFileManager("r", 8, self._backing())
        writer = _FakeOsm("w")
        assert manager.pending_writer(4) is None
        token = manager.allocate(writer, 4, _txn(writer))
        token.holder = writer
        manager.on_allocate_commit(writer, token)
        assert manager.pending_writer(4) is writer


class TestResetManager:
    def test_doom_is_latched_not_immediate(self):
        manager = ResetManager()
        osm = _FakeOsm()
        manager.doom(osm)
        assert not manager.inquire(osm, None, _txn(osm))
        manager.latch()
        assert manager.inquire(osm, None, _txn(osm))

    def test_doom_now_is_immediate(self):
        manager = ResetManager()
        osm = _FakeOsm()
        manager.doom_now(osm)
        assert manager.inquire(osm, None, _txn(osm))

    def test_normal_osm_inquiry_rejected(self):
        manager = ResetManager()
        assert not manager.inquire(_FakeOsm(), None, _txn(_FakeOsm()))

    def test_pardon_and_acknowledge(self):
        manager = ResetManager()
        osm = _FakeOsm()
        manager.doom(osm)
        assert manager.is_doomed(osm)
        manager.pardon(osm)
        assert not manager.is_doomed(osm)
        manager.doom_now(osm)
        manager.acknowledge(osm)
        assert not manager.inquire(osm, None, _txn(osm))

    def test_reset_manager_owns_no_tokens(self):
        manager = ResetManager()
        osm = _FakeOsm()
        assert manager.allocate(osm, None, _txn(osm)) is None
        with pytest.raises(TokenError):
            manager.release(osm, None, _txn(osm))
