"""Test package."""
