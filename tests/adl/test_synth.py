"""Tests for ADL-to-simulator synthesis (the retargetability payoff)."""

import pytest

from repro.adl import AdlError, PIPELINE5_ADL, STRONGARM_ADL, synthesize
from repro.isa.arm import assemble
from repro.models.pipeline5 import Pipeline5Model
from repro.models.strongarm import StrongArmModel
from repro.workloads import kernels, mediabench

from ..conftest import arm_program


class TestEquivalence:
    @pytest.mark.parametrize("kernel", ["gsm_dec", "g721_enc", "mpeg2_enc"])
    def test_pipeline5_matches_handwritten(self, kernel):
        source = mediabench.arm_source(kernel)
        hand = Pipeline5Model(assemble(source))
        hand.run()
        synthesised = synthesize(PIPELINE5_ADL, assemble(source))
        synthesised.run()
        assert synthesised.cycles == hand.cycles
        assert synthesised.exit_code == hand.exit_code

    @pytest.mark.parametrize("kernel", ["gsm_enc", "mpeg2_dec"])
    def test_strongarm_matches_handwritten(self, kernel):
        source = mediabench.arm_source(kernel)
        hand = StrongArmModel(assemble(source), perfect_memory=True)
        hand.run()
        synthesised = synthesize(STRONGARM_ADL, assemble(source))
        synthesised.run()
        assert synthesised.cycles == hand.cycles

    def test_diagnostic_loops_match(self):
        for name in kernels.KERNEL_NAMES[:12]:
            source = kernels.arm_source(name)
            hand = StrongArmModel(assemble(source), perfect_memory=True)
            hand.run()
            synthesised = synthesize(STRONGARM_ADL, assemble(source))
            synthesised.run()
            assert synthesised.cycles == hand.cycles, name


class TestRetargeting:
    def test_added_stage_lengthens_pipeline(self):
        deeper = STRONGARM_ADL.replace(
            "        state B\n",
            "        state B\n        state B2\n",
        ).replace(
            "    manager m_w kind stage\n",
            "    manager m_w kind stage\n    manager m_b2 kind stage\n",
        ).replace(
            "        edge B -> W { allocate m_w; release m_b } action publish_loads\n",
            "        edge B -> B2 { allocate m_b2; release m_b }\n"
            "        edge B2 -> W { allocate m_w; release m_b2 } action publish_loads\n",
        )
        source = arm_program("""
    li  r1, buf
    ldr r2, [r1]
    add r3, r2, #1
    mov r0, r3
""", data="buf: .word 41")
        shallow = synthesize(STRONGARM_ADL, assemble(source))
        shallow.run()
        deep = synthesize(deeper, assemble(source))
        deep.run()
        assert deep.exit_code == shallow.exit_code == 42
        assert deep.cycles > shallow.cycles

    def test_pool_stage_manager(self):
        """A pool-sized decode stage must not break in-order execution
        (regression: a younger op issuing around a starved elder both
        corrupted state and livelocked)."""
        wide = PIPELINE5_ADL.replace(
            "    manager m_d kind stage", "    manager m_d kind pool size 2"
        )
        source = arm_program("""
    mov r1, #1
    add r2, r1, #1
    mov r0, r2
""")
        model = synthesize(wide, assemble(source))
        model.run(50_000)
        assert model.exit_code == 2
        narrow = synthesize(PIPELINE5_ADL, assemble(source))
        narrow.run(50_000)
        assert narrow.exit_code == 2


class TestSynthErrors:
    def test_unknown_action_rejected(self):
        bad = PIPELINE5_ADL.replace("action fetch", "action teleport")
        with pytest.raises(AdlError, match="unknown action"):
            synthesize(bad, assemble(arm_program("    nop")))

    def test_missing_fetch_manager_rejected(self):
        with pytest.raises(AdlError, match="no fetch manager"):
            synthesize("""
processor p {
    manager m_reset kind reset
    machine op { state I initial }
}
""", assemble(arm_program("    nop")))

    def test_missing_reset_manager_rejected(self):
        with pytest.raises(AdlError, match="no reset manager"):
            synthesize("""
processor p {
    manager m_f kind fetch
    machine op { state I initial }
}
""", assemble(arm_program("    nop")))
