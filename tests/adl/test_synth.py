"""Tests for ADL-to-simulator synthesis (the retargetability payoff)."""

import pytest

from repro.adl import AdlError, PIPELINE5_ADL, STRONGARM_ADL, synthesize
from repro.isa.arm import assemble
from repro.models.pipeline5 import Pipeline5Model
from repro.models.strongarm import StrongArmModel
from repro.workloads import kernels, mediabench

from ..conftest import arm_program


class TestEquivalence:
    @pytest.mark.parametrize("kernel", ["gsm_dec", "g721_enc", "mpeg2_enc"])
    def test_pipeline5_matches_handwritten(self, kernel):
        source = mediabench.arm_source(kernel)
        hand = Pipeline5Model(assemble(source))
        hand.run()
        synthesised = synthesize(PIPELINE5_ADL, assemble(source))
        synthesised.run()
        assert synthesised.cycles == hand.cycles
        assert synthesised.exit_code == hand.exit_code

    @pytest.mark.parametrize("kernel", ["gsm_enc", "mpeg2_dec"])
    def test_strongarm_matches_handwritten(self, kernel):
        source = mediabench.arm_source(kernel)
        hand = StrongArmModel(assemble(source), perfect_memory=True)
        hand.run()
        synthesised = synthesize(STRONGARM_ADL, assemble(source))
        synthesised.run()
        assert synthesised.cycles == hand.cycles

    def test_diagnostic_loops_match(self):
        for name in kernels.KERNEL_NAMES[:12]:
            source = kernels.arm_source(name)
            hand = StrongArmModel(assemble(source), perfect_memory=True)
            hand.run()
            synthesised = synthesize(STRONGARM_ADL, assemble(source))
            synthesised.run()
            assert synthesised.cycles == hand.cycles, name


class TestRetargeting:
    def test_added_stage_lengthens_pipeline(self):
        deeper = STRONGARM_ADL.replace(
            "        state B\n",
            "        state B\n        state B2\n",
        ).replace(
            "    manager m_w kind stage\n",
            "    manager m_w kind stage\n    manager m_b2 kind stage\n",
        ).replace(
            "        edge B -> W { allocate m_w; release m_b } action publish_loads\n",
            "        edge B -> B2 { allocate m_b2; release m_b }\n"
            "        edge B2 -> W { allocate m_w; release m_b2 } action publish_loads\n",
        )
        source = arm_program("""
    li  r1, buf
    ldr r2, [r1]
    add r3, r2, #1
    mov r0, r3
""", data="buf: .word 41")
        shallow = synthesize(STRONGARM_ADL, assemble(source))
        shallow.run()
        deep = synthesize(deeper, assemble(source))
        deep.run()
        assert deep.exit_code == shallow.exit_code == 42
        assert deep.cycles > shallow.cycles

    def test_pool_stage_manager(self):
        """A pool-sized decode stage must not break in-order execution
        (regression: a younger op issuing around a starved elder both
        corrupted state and livelocked)."""
        wide = PIPELINE5_ADL.replace(
            "    manager m_d kind stage", "    manager m_d kind pool size 2"
        )
        source = arm_program("""
    mov r1, #1
    add r2, r1, #1
    mov r0, r2
""")
        model = synthesize(wide, assemble(source))
        model.run(50_000)
        assert model.exit_code == 2
        narrow = synthesize(PIPELINE5_ADL, assemble(source))
        narrow.run(50_000)
        assert narrow.exit_code == 2


class TestSynthErrors:
    def test_unknown_action_rejected(self):
        bad = PIPELINE5_ADL.replace("action fetch", "action teleport")
        with pytest.raises(AdlError, match="unknown action"):
            synthesize(bad, assemble(arm_program("    nop")))

    def test_missing_fetch_manager_rejected(self):
        with pytest.raises(AdlError, match="no fetch manager"):
            synthesize("""
processor p {
    manager m_reset kind reset
    machine op { state I initial }
}
""", assemble(arm_program("    nop")))

    def test_missing_reset_manager_rejected(self):
        with pytest.raises(AdlError, match="no reset manager"):
            synthesize("""
processor p {
    manager m_f kind fetch
    machine op { state I initial }
}
""", assemble(arm_program("    nop")))

    def test_unknown_action_error_carries_line(self):
        bad = PIPELINE5_ADL.replace("action fetch", "action teleport")
        with pytest.raises(AdlError, match="line 20.*unknown action") as err:
            synthesize(bad, assemble(arm_program("    nop")))
        assert err.value.lineno == 20

    def test_allocate_many_without_identifier_rejected(self):
        bad = PIPELINE5_ADL.replace(
            "allocate_many m_r dests as rupd", "allocate_many m_r as rupd"
        )
        with pytest.raises(AdlError, match="needs an identifier"):
            synthesize(bad, assemble(arm_program("    nop")))


#: an execute edge that allocates no stage: legal, but the synthesiser
#: has no stage to charge multi-cycle holds against
STAGELESS = """
processor stageless {
    param osms 3
    manager m_f kind fetch
    manager m_reset kind reset
    machine op {
        state I initial
        state F
        edge I -> F { allocate m_f } action fetch
        edge F -> I { release m_f } action execute action retire
        edge F -> I priority 10 { inquire m_reset; discard } action killed
    }
}
"""


class TestSynthEdgeCases:
    def test_no_execute_stage_still_runs(self):
        model = synthesize(STAGELESS, assemble(arm_program("    mov r0, #0")))
        assert model._execute_stage is None
        model.run()
        assert model.exit_code == 0

    def test_no_execute_stage_skips_multiplier_hold(self):
        # a multiply would normally hold the execute stage; with no
        # stage to hold, execution must still complete correctly
        model = synthesize(STAGELESS, assemble(arm_program("""
    mov r1, #3
    mov r2, #70
    mul r0, r1, r2
""")))
        model.run()
        assert model.exit_code == 210

    def test_forwarding_manager_variant(self):
        from repro.core import RegisterFileManager
        from repro.models.strongarm.managers import ForwardingRegisterFileManager

        program = assemble(arm_program("    mov r0, #0"))
        forwarding = synthesize(STRONGARM_ADL, program)
        assert isinstance(forwarding.managers["m_r"], ForwardingRegisterFileManager)
        plain = synthesize(PIPELINE5_ADL, program)
        assert isinstance(plain.managers["m_r"], RegisterFileManager)
        assert not isinstance(plain.managers["m_r"], ForwardingRegisterFileManager)


class TestSourceSpans:
    def test_spec_carries_source_unit_and_spans(self):
        model = synthesize(PIPELINE5_ADL, assemble(arm_program("    mov r0, #0")))
        spec = model.spec
        assert spec.source_unit == "pipeline5"
        for state in spec.states.values():
            assert state.source_span is not None
            unit, line = state.source_span
            assert unit == "pipeline5" and isinstance(line, int)
        for edge in spec.edges:
            assert edge.source_span is not None

    def test_states_and_edges_point_at_declaration_lines(self):
        model = synthesize(PIPELINE5_ADL, assemble(arm_program("    mov r0, #0")))
        spec = model.spec
        assert spec.states["I"].source_span == ("pipeline5", 13)
        assert spec.states["W"].source_span == ("pipeline5", 18)
        first_edge = next(e for e in spec.edges if e.label == "I->F")
        assert first_edge.source_span == ("pipeline5", 20)
        # a declaration wrapped over two source lines is stamped with
        # the line it starts on
        issue_edge = next(e for e in spec.edges if e.label == "D->E")
        assert issue_edge.source_span == ("pipeline5", 22)

    def test_handwritten_specs_have_no_spans(self):
        hand = Pipeline5Model(assemble(arm_program("    mov r0, #0")))
        assert hand.spec.source_unit is None
        assert all(s.source_span is None for s in hand.spec.states.values())
        assert all(e.source_span is None for e in hand.spec.edges)
