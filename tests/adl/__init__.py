"""Test package."""
