"""Tests for the ADL parser."""

import pytest

from repro.adl import AdlError, PIPELINE5_ADL, STRONGARM_ADL, parse

MINIMAL = """
processor tiny {
    manager m_f kind fetch
    manager m_reset kind reset
    machine op {
        state I initial
        state F
        edge I -> F { allocate m_f } action fetch
        edge F -> I { release m_f }
    }
}
"""


class TestParsing:
    def test_minimal_description(self):
        processor = parse(MINIMAL)
        assert processor.name == "tiny"
        assert [m.name for m in processor.managers] == ["m_f", "m_reset"]
        machine = processor.machine
        assert machine.initial_state == "I"
        assert len(machine.edges) == 2
        assert machine.edges[0].actions == ["fetch"]

    def test_builtin_descriptions_parse(self):
        for text in (PIPELINE5_ADL, STRONGARM_ADL):
            processor = parse(text)
            assert len(processor.machine.states) == 6
            assert processor.params["osms"] == 7

    def test_priorities_and_slots(self):
        processor = parse("""
processor p {
    manager pool kind pool size 4
    manager m_reset kind reset
    machine op {
        state I initial
        state S
        edge I -> S priority 7 { allocate pool as entry }
        edge S -> I { release entry }
    }
}
""")
        edge = processor.machine.edges[0]
        assert edge.priority == 7
        assert edge.primitives[0].slot == "entry"
        assert processor.manager("pool").params["size"] == 4

    def test_forwarding_flag(self):
        processor = parse("""
processor p {
    manager r kind regfile regs 17 forwarding
    machine op { state I initial }
}
""")
        assert processor.manager("r").forwarding is True

    def test_multiple_actions(self):
        processor = parse("""
processor p {
    manager m kind stage
    machine op {
        state I initial
        state S
        edge I -> S { allocate m } action memory action publish
    }
}
""")
        assert processor.machine.edges[0].actions == ["memory", "publish"]

    def test_comments_ignored(self):
        parse("""
# full line comment
processor p {        # trailing comment
    machine op { state I initial }
}
""")


class TestErrors:
    def test_unknown_manager_kind(self):
        with pytest.raises(AdlError, match="unknown manager kind"):
            parse("processor p { manager m kind banana }")

    def test_unknown_primitive(self):
        with pytest.raises(AdlError, match="unknown primitive"):
            parse("""
processor p {
    manager m kind stage
    machine op {
        state I initial
        state S
        edge I -> S { grab m }
    }
}
""")

    def test_missing_initial_state(self):
        with pytest.raises(AdlError, match="no initial state"):
            parse("processor p { machine op { state A } }")

    def test_unknown_state_in_edge(self):
        with pytest.raises(AdlError, match="unknown state"):
            parse("""
processor p {
    machine op {
        state I initial
        edge I -> Ghost { }
    }
}
""")

    def test_unknown_manager_in_primitive(self):
        with pytest.raises(AdlError, match="unknown manager"):
            parse("""
processor p {
    machine op {
        state I initial
        state S
        edge I -> S { allocate ghost }
    }
}
""")

    def test_duplicate_manager(self):
        with pytest.raises(AdlError, match="duplicate manager"):
            parse("""
processor p {
    manager m kind stage
    manager m kind stage
    machine op { state I initial }
}
""")

    def test_syntax_error_reports_line(self):
        with pytest.raises(AdlError, match="line"):
            parse("processor p {\n    manager\n}")

    def test_bad_character_reports_line(self):
        with pytest.raises(AdlError, match=r"line 2: bad character '@'"):
            parse("processor p {\n    @\n}")

    def test_truncated_description_reports_last_line(self):
        with pytest.raises(AdlError, match="unexpected end of description") as err:
            parse("processor p {\n    machine op {")
        assert err.value.lineno == 2
        assert "line 2" in str(err.value)

    def test_empty_description_has_no_line(self):
        with pytest.raises(AdlError, match="unexpected end of description") as err:
            parse("")
        assert err.value.lineno is None
        assert "line" not in str(err.value)

    def test_wrong_token_kind(self):
        with pytest.raises(AdlError, match="expected int, got 'two'"):
            parse("processor p { param osms two }")

    def test_wrong_token_value(self):
        with pytest.raises(AdlError, match=r"expected '\{', got ';'"):
            parse("processor p ;")

    def test_unknown_processor_item(self):
        with pytest.raises(AdlError, match="expected manager/machine/param/allow"):
            parse("processor p { widget w }")

    def test_unknown_machine_item(self):
        with pytest.raises(AdlError, match="expected state/edge"):
            parse("processor p { machine op { transition } }")


class TestValidateFlag:
    def test_validate_false_returns_defective_ast(self):
        processor = parse("""
processor p {
    machine op {
        state I initial
        edge I -> Ghost { allocate nowhere }
    }
}
""", validate=False)
        edge = processor.machine.edges[0]
        assert edge.dst == "Ghost"
        assert edge.primitives[0].manager == "nowhere"

    def test_validate_true_is_the_default(self):
        with pytest.raises(AdlError):
            parse("processor p { machine op { state A } }")


class TestSourceLines:
    def test_declaration_linenos(self):
        processor = parse(MINIMAL)
        assert processor.lineno == 2
        assert [m.lineno for m in processor.managers] == [3, 4]
        machine = processor.machine
        assert machine.lineno == 5
        assert [s.lineno for s in machine.states] == [6, 7]
        assert [e.lineno for e in machine.edges] == [8, 9]
        assert machine.edges[0].primitives[0].lineno == 8

    def test_param_linenos(self):
        processor = parse(PIPELINE5_ADL)
        assert processor.param_lines["osms"] == 3

    def test_semantic_error_carries_declaration_line(self):
        with pytest.raises(AdlError) as err:
            parse("""
processor p {
    machine op {
        state I initial
        edge I -> Ghost { }
    }
}
""")
        assert err.value.lineno == 5


class TestAllowClauses:
    def test_processor_level_allow(self):
        processor = parse("""
processor p {
    allow ADL009
    machine op { state I initial }
}
""")
        assert processor.allow == ["ADL009"]

    def test_edge_level_allow_after_actions(self):
        processor = parse("""
processor p {
    manager m kind stage
    machine op {
        state I initial
        state S
        edge I -> S { allocate m } action memory allow ADL007 allow ADL008
        edge S -> I { release m }
    }
}
""")
        edge = processor.machine.edges[0]
        assert edge.actions == ["memory"]
        assert edge.allow == ["ADL007", "ADL008"]
