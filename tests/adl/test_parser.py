"""Tests for the ADL parser."""

import pytest

from repro.adl import AdlError, PIPELINE5_ADL, STRONGARM_ADL, parse

MINIMAL = """
processor tiny {
    manager m_f kind fetch
    manager m_reset kind reset
    machine op {
        state I initial
        state F
        edge I -> F { allocate m_f } action fetch
        edge F -> I { release m_f }
    }
}
"""


class TestParsing:
    def test_minimal_description(self):
        processor = parse(MINIMAL)
        assert processor.name == "tiny"
        assert [m.name for m in processor.managers] == ["m_f", "m_reset"]
        machine = processor.machine
        assert machine.initial_state == "I"
        assert len(machine.edges) == 2
        assert machine.edges[0].actions == ["fetch"]

    def test_builtin_descriptions_parse(self):
        for text in (PIPELINE5_ADL, STRONGARM_ADL):
            processor = parse(text)
            assert len(processor.machine.states) == 6
            assert processor.params["osms"] == 7

    def test_priorities_and_slots(self):
        processor = parse("""
processor p {
    manager pool kind pool size 4
    manager m_reset kind reset
    machine op {
        state I initial
        state S
        edge I -> S priority 7 { allocate pool as entry }
        edge S -> I { release entry }
    }
}
""")
        edge = processor.machine.edges[0]
        assert edge.priority == 7
        assert edge.primitives[0].slot == "entry"
        assert processor.manager("pool").params["size"] == 4

    def test_forwarding_flag(self):
        processor = parse("""
processor p {
    manager r kind regfile regs 17 forwarding
    machine op { state I initial }
}
""")
        assert processor.manager("r").forwarding is True

    def test_multiple_actions(self):
        processor = parse("""
processor p {
    manager m kind stage
    machine op {
        state I initial
        state S
        edge I -> S { allocate m } action memory action publish
    }
}
""")
        assert processor.machine.edges[0].actions == ["memory", "publish"]

    def test_comments_ignored(self):
        parse("""
# full line comment
processor p {        # trailing comment
    machine op { state I initial }
}
""")


class TestErrors:
    def test_unknown_manager_kind(self):
        with pytest.raises(AdlError, match="unknown manager kind"):
            parse("processor p { manager m kind banana }")

    def test_unknown_primitive(self):
        with pytest.raises(AdlError, match="unknown primitive"):
            parse("""
processor p {
    manager m kind stage
    machine op {
        state I initial
        state S
        edge I -> S { grab m }
    }
}
""")

    def test_missing_initial_state(self):
        with pytest.raises(AdlError, match="no initial state"):
            parse("processor p { machine op { state A } }")

    def test_unknown_state_in_edge(self):
        with pytest.raises(AdlError, match="unknown state"):
            parse("""
processor p {
    machine op {
        state I initial
        edge I -> Ghost { }
    }
}
""")

    def test_unknown_manager_in_primitive(self):
        with pytest.raises(AdlError, match="unknown manager"):
            parse("""
processor p {
    machine op {
        state I initial
        state S
        edge I -> S { allocate ghost }
    }
}
""")

    def test_duplicate_manager(self):
        with pytest.raises(AdlError, match="duplicate manager"):
            parse("""
processor p {
    manager m kind stage
    manager m kind stage
    machine op { state I initial }
}
""")

    def test_syntax_error_reports_line(self):
        with pytest.raises(AdlError, match="line"):
            parse("processor p {\n    manager\n}")
