"""Tests for the TLB and the memory-bus contention model."""

import pytest

from repro.memory import MemoryBus, Tlb


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb("t", entries=4, walk_penalty=20)
        assert tlb.access(0x1000) == 20
        assert tlb.access(0x1FFF) == 0  # same page
        assert tlb.access(0x2000) == 20

    def test_lru_replacement(self):
        tlb = Tlb("t", entries=2, walk_penalty=5)
        tlb.access(0x1000)
        tlb.access(0x2000)
        tlb.access(0x1000)  # page 1 becomes MRU
        tlb.access(0x3000)  # evicts page 2
        assert tlb.access(0x1000) == 0
        assert tlb.access(0x2000) == 5

    def test_capacity_respected(self):
        tlb = Tlb("t", entries=3)
        for page in range(8):
            tlb.access(page << 12)
        assert len(tlb._lru) == 3

    def test_flush(self):
        tlb = Tlb("t")
        tlb.access(0)
        tlb.flush()
        assert tlb.access(0) == tlb.walk_penalty

    def test_hit_rate(self):
        tlb = Tlb("t")
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.hit_rate == pytest.approx(0.5)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            Tlb("t", entries=0)


class TestMemoryBus:
    def test_uncontended_request_has_no_delay(self):
        bus = MemoryBus(beat_cycles=2, width_bytes=4)
        assert bus.request(cycle=0, n_bytes=32) == 0
        assert bus.busy_until == 16  # 8 beats * 2 cycles

    def test_back_to_back_requests_queue(self):
        bus = MemoryBus(beat_cycles=2, width_bytes=4)
        bus.request(0, 32)
        delay = bus.request(4, 32)
        assert delay == 12  # waits until cycle 16
        assert bus.stats.contention_cycles == 12

    def test_request_after_idle_gap(self):
        bus = MemoryBus()
        bus.request(0, 8)
        assert bus.request(1000, 8) == 0

    def test_transfer_cycles_rounds_up(self):
        bus = MemoryBus(beat_cycles=3, width_bytes=4)
        assert bus.transfer_cycles(5) == 6  # 2 beats

    def test_reset(self):
        bus = MemoryBus()
        bus.request(0, 64)
        bus.reset()
        assert bus.request(0, 4) == 0
