"""Tests for the set-associative cache timing model."""

import pytest

from repro.memory import Cache


def small_cache(**kwargs):
    defaults = dict(size=256, line_size=16, assoc=2, hit_latency=1, miss_penalty=10)
    defaults.update(kwargs)
    return Cache("c", **defaults)


class TestBasics:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", size=100, line_size=16, assoc=3)

    def test_first_access_misses_second_hits(self):
        cache = small_cache()
        assert cache.access(0x1000) == 11
        assert cache.access(0x1000) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x100F) == 1  # same 16-byte line

    def test_adjacent_line_misses(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1010) == 11

    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_flush(self):
        cache = small_cache()
        cache.access(0)
        cache.flush()
        assert cache.access(0) == 11


class TestReplacement:
    def test_lru_within_set(self):
        # 2-way: three conflicting lines evict the least recently used
        cache = small_cache()
        n_sets = cache.n_sets
        stride = n_sets * 16  # same set index
        cache.access(0)           # miss
        cache.access(stride)      # miss
        cache.access(0)           # hit, 0 becomes MRU
        cache.access(2 * stride)  # miss, evicts `stride`
        assert cache.access(0) == 1
        assert cache.access(stride) == 11

    def test_assoc_never_exceeded(self):
        cache = small_cache()
        stride = cache.n_sets * 16
        for i in range(10):
            cache.access(i * stride)
        assert all(len(ways) <= cache.assoc for ways in cache._sets)


class TestWritePolicies:
    def test_writeback_dirty_eviction_costs(self):
        cache = small_cache(write_back=True)
        stride = cache.n_sets * 16
        cache.access(0, is_write=True)       # dirty
        cache.access(stride)                  # fills the other way
        latency = cache.access(2 * stride)    # evicts dirty line 0
        assert latency > 11
        assert cache.stats.writebacks == 1

    def test_write_through_charges_next_level(self):
        cache = small_cache(write_back=False)
        cache.access(0)  # fill
        assert cache.access(0, is_write=True) > 1
        assert cache.stats.writebacks == 0

    def test_next_level_hierarchy(self):
        l2 = small_cache(size=512, miss_penalty=50)
        l1 = small_cache(next_level=l2)
        first = l1.access(0)
        assert first == 1 + 1 + 50  # L1 miss -> L2 miss -> memory
        l1.flush()
        assert l1.access(0) == 1 + 1  # L1 miss, L2 hit


class TestProbe:
    def test_probe_is_pure(self):
        cache = small_cache()
        assert cache.probe(0x40) is False
        stats_before = (cache.stats.accesses, cache.stats.misses)
        cache.probe(0x40)
        assert (cache.stats.accesses, cache.stats.misses) == stats_before
        cache.access(0x40)
        assert cache.probe(0x40) is True

    def test_probe_does_not_touch_lru(self):
        cache = small_cache()
        stride = cache.n_sets * 16
        cache.access(0)
        cache.access(stride)
        cache.probe(0)          # must NOT promote line 0
        cache.access(2 * stride)  # evicts true-LRU line 0
        assert cache.probe(0) is False
