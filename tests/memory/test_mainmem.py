"""Tests for sparse main memory, including page-boundary behaviour."""

from hypothesis import given, strategies as st

from repro.memory import MainMemory
from repro.memory.mainmem import PAGE_SIZE

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
words = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestBasics:
    def test_uninitialised_reads_zero(self):
        memory = MainMemory()
        assert memory.read_word(0x1234) == 0
        assert memory.read_byte(0xFFFFFFFF) == 0
        assert memory.pages_allocated == 0

    def test_word_is_little_endian(self):
        memory = MainMemory()
        memory.write_word(0x100, 0xAABBCCDD)
        assert memory.read_byte(0x100) == 0xDD
        assert memory.read_byte(0x103) == 0xAA

    def test_half_access(self):
        memory = MainMemory()
        memory.write_half(0x10, 0xBEEF)
        assert memory.read_half(0x10) == 0xBEEF
        assert memory.read_byte(0x10) == 0xEF

    def test_block_roundtrip(self):
        memory = MainMemory()
        blob = bytes(range(64))
        memory.write_block(PAGE_SIZE - 32, blob)  # straddles a page boundary
        assert memory.read_block(PAGE_SIZE - 32, 64) == blob
        assert memory.pages_allocated == 2

    def test_word_across_page_boundary(self):
        memory = MainMemory()
        memory.write_word(PAGE_SIZE - 2, 0x11223344)
        assert memory.read_word(PAGE_SIZE - 2) == 0x11223344


class TestProperties:
    @given(addresses, words)
    def test_word_roundtrip(self, address, value):
        memory = MainMemory()
        memory.write_word(address, value)
        assert memory.read_word(address) == value

    @given(addresses, st.integers(min_value=0, max_value=0xFF))
    def test_byte_roundtrip(self, address, value):
        memory = MainMemory()
        memory.write_byte(address, value)
        assert memory.read_byte(address) == value

    @given(addresses, words, words)
    def test_last_write_wins(self, address, first, second):
        memory = MainMemory()
        memory.write_word(address, first)
        memory.write_word(address, second)
        assert memory.read_word(address) == second

    @given(st.integers(min_value=0, max_value=0xFFFF), words)
    def test_disjoint_writes_do_not_interfere(self, address, value):
        memory = MainMemory()
        memory.write_word(address * 4, value)
        memory.write_word(address * 4 + 0x100000, ~value & 0xFFFFFFFF)
        assert memory.read_word(address * 4) == value
