"""Test package."""
