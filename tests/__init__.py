"""Test package."""
