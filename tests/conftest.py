"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest


@pytest.fixture()
def arm_assemble():
    from repro.isa.arm import assemble

    return assemble


@pytest.fixture()
def ppc_assemble():
    from repro.isa.ppc import assemble

    return assemble


def arm_program(body: str, data: str = "") -> str:
    """Wrap an instruction body into a runnable ARM program skeleton."""
    data_section = f"    .data\n{data}" if data else ""
    return f"""
    .text
_start:
{body}
    swi #0
{data_section}
"""


def ppc_program(body: str, data: str = "") -> str:
    data_section = f"    .data\n{data}" if data else ""
    return f"""
    .text
_start:
{body}
    li r0, 0
    sc
{data_section}
"""
