"""Test package."""
