"""Property-based differential testing of the simulators.

The strongest invariant in this repository: for *any* terminating
program, the OSM StrongARM model and the independently hand-coded
SimpleScalar-style simulator produce identical cycle counts and identical
architectural results, and both agree functionally with the ISS.
Hypothesis generates random straight-line-plus-loop programs to hunt for
interleavings the hand-written tests missed.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.simplescalar import SimpleScalarArm
from repro.isa.arm import assemble
from repro.iss import ArmInterpreter
from repro.models.strongarm import StrongArmModel


@st.composite
def random_program(draw):
    """A random terminating ARM-like program with hazards and branches."""
    lines = ["    .text", "_start:", "    li   r8, scratch"]
    for reg in range(1, 5):
        lines.append(f"    mov  r{reg}, #{draw(st.integers(0, 255))}")
    body_ops = st.sampled_from([
        "    add  r{d}, r{a}, r{b}",
        "    sub  r{d}, r{a}, r{b}",
        "    orr  r{d}, r{a}, r{b}",
        "    eor  r{d}, r{a}, r{b}",
        "    mul  r{d}, r{a}, r{b}",
        "    mov  r{d}, r{a}, lsl #2",
        "    str  r{a}, [r8, #{off}]",
        "    ldr  r{d}, [r8, #{off}]",
        "    cmp  r{a}, r{b}",
        "    addgt r{d}, r{a}, #1",
        "    suble r{d}, r{b}, #1",
    ])
    n_body = draw(st.integers(3, 12))
    for _ in range(n_body):
        template = draw(body_ops)
        lines.append(template.format(
            d=draw(st.integers(1, 6)),
            a=draw(st.integers(1, 6)),
            b=draw(st.integers(1, 6)),
            off=draw(st.integers(0, 15)) * 4,
        ))
    # a bounded counting loop to exercise branches
    trip = draw(st.integers(1, 6))
    lines += [
        f"    mov  r7, #{trip}",
        "kloop:",
        "    subs r7, r7, #1",
        "    bne  kloop",
        "    and  r0, r1, #255",
        "    swi  #0",
        "    .data",
        "scratch: .space 64",
    ]
    return "\n".join(lines)


class TestDifferential:
    @settings(max_examples=15, deadline=None)
    @given(random_program())
    def test_osm_equals_handcoded_equals_iss(self, source):
        iss = ArmInterpreter(assemble(source))
        iss.run(100_000)

        osm = StrongArmModel(assemble(source), perfect_memory=True)
        osm.run(200_000)

        baseline = SimpleScalarArm(assemble(source))
        baseline.run(200_000)

        assert osm.exit_code == iss.state.exit_code
        assert baseline.exit_code == iss.state.exit_code
        assert osm.retired == iss.steps
        assert baseline.retired == iss.steps
        assert osm.cycles == baseline.cycles
        # architectural register state identical at exit
        assert osm.state.regs.values == iss.state.regs.values
