"""Property-based invariants of the token machinery under random schedules."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    Allocate,
    Condition,
    Director,
    MachineSpec,
    OperationStateMachine,
    PoolManager,
    Release,
)


def _build_random_pipeline(stage_sizes, n_osms):
    """A linear pipeline with PoolManager stages of the given sizes."""
    managers = [PoolManager(f"s{i}", size) for i, size in enumerate(stage_sizes)]
    spec = MachineSpec("random")
    spec.state("I", initial=True)
    names = [f"S{i}" for i in range(len(managers))]
    for name in names:
        spec.state(name)
    previous = "I"
    for i, (name, manager) in enumerate(zip(names, managers)):
        primitives = [Allocate(manager, slot=f"s{i}")]
        if i > 0:
            primitives.append(Release(f"s{i - 1}"))
        spec.edge(previous, name, Condition(primitives))
        previous = name
    spec.edge(previous, "I", Condition([Release(f"s{len(managers) - 1}")]))
    spec.validate()
    director = Director()
    osms = [OperationStateMachine(spec) for _ in range(n_osms)]
    director.add(*osms)
    return director, managers, osms


class TestTokenConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(1, 3), min_size=1, max_size=5),
        st.integers(1, 8),
        st.integers(5, 40),
    )
    def test_tokens_conserved_and_never_oversubscribed(self, sizes, n_osms, steps):
        director, managers, osms = _build_random_pipeline(sizes, n_osms)
        for _ in range(steps):
            director.control_step()
            for manager in managers:
                holders = [t.holder for t in manager.tokens if t.holder is not None]
                # a token is held by at most one OSM, and every held token
                # appears in exactly one OSM buffer
                assert len(holders) == len(set(id(h) for h in holders))
                for token in manager.tokens:
                    if token.holder is not None:
                        assert token.holder.slot_of(token) is not None
            # every buffered token's holder field points back at its OSM
            for osm in osms:
                for token in osm.token_buffer.values():
                    assert token.holder is osm

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(5, 50))
    def test_progress_through_single_slot_pipeline(self, n_osms, steps):
        """Something always moves while work remains in a 1-wide ring."""
        director, managers, osms = _build_random_pipeline([1, 1], n_osms)
        total_transitions = 0
        for _ in range(steps):
            total_transitions += director.control_step()
        assert total_transitions > 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(10, 30))
    def test_determinism_under_random_pool_sizes(self, n_osms, steps):
        def run_once():
            director, _, osms = _build_random_pipeline([2, 1, 2], n_osms)
            history = []
            for _ in range(steps):
                director.control_step()
                history.append(tuple(o.current.name for o in osms))
            return history

        assert run_once() == run_once()
