"""Tests for the functional oracle."""

import pytest

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter, Oracle

from ..conftest import arm_program


def _oracle(body: str, data: str = "") -> Oracle:
    return Oracle(ArmInterpreter(assemble(arm_program(body, data))))


class TestOracle:
    def test_records_in_program_order(self):
        oracle = _oracle("""
    mov r1, #1
    mov r2, #2
    mov r0, #0
""")
        first = oracle.record(0)
        second = oracle.record(1)
        assert first.pc + 4 == second.pc
        assert first.next_pc == second.pc

    def test_lazy_extension(self):
        oracle = _oracle("""
    mov r1, #1
    mov r0, #0
""")
        assert oracle.length is None
        oracle.record(0)
        assert oracle.length is None  # not yet finished
        assert oracle.record(99) is None  # past the end
        assert oracle.length == 3  # mov, mov, swi

    def test_run_to_completion(self):
        oracle = _oracle("    mov r0, #5")
        assert oracle.run_to_completion() == 2
        assert oracle.exit_code == 5

    def test_branch_records_control_transfer(self):
        oracle = _oracle("""
    b target
    nop
target:
    mov r0, #0
""")
        record = oracle.record(0)
        assert record.taken
        assert record.is_control_transfer
        assert oracle.record(1).pc == record.next_pc

    def test_memory_records(self):
        oracle = _oracle("""
    li  r1, buf
    str r1, [r1]
    ldr r2, [r1]
    mov r0, #0
""", data="buf: .space 8")
        # li expands to 4 ops; the store is record 4
        store = oracle.record(4)
        load = oracle.record(5)
        assert store.mem_is_store and store.mem_addr == load.mem_addr

    def test_failed_condition_recorded_as_not_executed(self):
        oracle = _oracle("""
    mov  r1, #1
    cmp  r1, #5
    addeq r2, r2, #1
    mov  r0, #0
""")
        assert oracle.record(2).executed is False

    def test_decode_at_serves_static_instructions(self):
        oracle = _oracle("    mov r0, #0")
        entry = oracle.interpreter.program.entry
        instr = oracle.decode_at(entry)
        assert instr.mnemonic == "mov"

    def test_budget_guard(self):
        source = """
    .text
_start:
    b _start
"""
        oracle = Oracle(ArmInterpreter(assemble(source)), max_steps=50)
        with pytest.raises(RuntimeError, match="exceeded"):
            oracle.record(100)
