"""Test package."""
