"""Regression tests for decode-cache block-reuse accounting.

``BaseInterpreter.fetch_decode`` used to probe the per-instruction layer
first and return before ever reaching :meth:`DecodeCache.fetch_block` —
the only place the ``block_hits`` counter lived — so the timing models
(which fetch exclusively through ``fetch_decode``) reported a 0.0 block
hit rate on every workload, loops included.  These tests pin the fixed
contract: re-fetching a block entry is a counted block hit, for the raw
interpreter and through a whole timing model.
"""

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter
from repro.models.strongarm import StrongArmModel

#: a workload whose hot path is a loop: the block at ``loop`` is
#: re-entered ten times, so any correct block-reuse accounting must
#: report hits
LOOP_SOURCE = """
    .text
_start:
    mov r1, #10
loop:
    subs r1, r1, #1
    bne loop
    mov r0, #0
    swi #0
"""


class TestFetchDecodeBlockAccounting:
    def test_reentry_counts_block_hit(self):
        interpreter = ArmInterpreter(assemble(LOOP_SOURCE))
        entry = interpreter.program.entry
        first = interpreter.fetch_decode(entry)
        assert interpreter.decode_cache.block_misses >= 1
        before = interpreter.decode_cache.block_hits
        second = interpreter.fetch_decode(entry)
        assert second is first
        assert interpreter.decode_cache.block_hits == before + 1

    def test_midblock_fetch_is_not_a_block_hit(self):
        interpreter = ArmInterpreter(assemble(LOOP_SOURCE))
        entry = interpreter.program.entry
        interpreter.fetch_decode(entry)
        hits = interpreter.decode_cache.block_hits
        # entry+4 starts the loop block; probe an address cached by the
        # *first* block's build but not itself rebuilt as a block entry
        interpreter.fetch_decode(entry)  # warm
        assert interpreter.decode_cache.block_hits > hits

    def test_unspecialized_interpreter_counts_nothing(self):
        interpreter = ArmInterpreter(assemble(LOOP_SOURCE), specialize=False)
        interpreter.run()
        assert interpreter.decode_cache.block_hits == 0
        assert interpreter.decode_cache.block_misses == 0

    def test_iss_loop_has_nonzero_hit_rate(self):
        interpreter = ArmInterpreter(assemble(LOOP_SOURCE))
        assert interpreter.run() == 0
        cache = interpreter.decode_cache
        assert cache.block_hits > 0
        probes = cache.block_hits + cache.block_misses
        assert cache.block_hits / probes > 0.5


class TestTimingModelBlockAccounting:
    def test_strongarm_loop_has_nonzero_hit_rate(self):
        # the timing models fetch through BaseInterpreter.fetch_decode;
        # this is exactly the path whose re-entries were never counted
        model = StrongArmModel(assemble(LOOP_SOURCE), perfect_memory=True)
        model.run(100_000)
        assert model.exit_code == 0
        cache = model.iss.decode_cache
        assert cache.block_hits > 0, "looping workload must reuse blocks"
        probes = cache.block_hits + cache.block_misses
        assert cache.block_hits / probes > 0.5
