"""Differential test: specialized vs plain interpreter, in lockstep.

The per-ISA execgen binds ``exec_fn`` executor closures that must mirror
``semantics.execute`` exactly — any drift silently corrupts both the ISS
and every timing model dispatching through ``exec_fn``.  These tests run
the specialized and unspecialized interpreters step for step over whole
MediaBench workloads and compare the complete architectural state after
every instruction.
"""

import pytest

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import ArmInterpreter, PpcInterpreter
from repro.workloads import mediabench

MAX_LOCKSTEP = 200_000


def _snapshot(state, n_regs):
    return (
        state.pc,
        tuple(state.regs.read(r) for r in range(n_regs)),
        state.flag_n, state.flag_z, state.flag_c, state.flag_v,
        state.lr, state.ctr,
        state.halted, state.exit_code, state.instret,
    )


def _lockstep(specialized, plain, n_regs):
    steps = 0
    while not specialized.state.halted:
        assert steps < MAX_LOCKSTEP, "lockstep budget exceeded"
        instr_s, _ = specialized.step()
        instr_p, _ = plain.step()
        assert instr_s.addr == instr_p.addr
        assert _snapshot(specialized.state, n_regs) == \
            _snapshot(plain.state, n_regs), f"diverged after {instr_s.text}"
        steps += 1
    assert plain.state.halted
    assert specialized.state.exit_code == plain.state.exit_code


@pytest.mark.parametrize("name", ["gsm_dec", "g721_enc"])
def test_arm_specialized_lockstep(name):
    program = asm_arm(mediabench.arm_source(name))
    specialized = ArmInterpreter(program, specialize=True)
    plain = ArmInterpreter(program, specialize=False)
    # the specialized side must actually be specialized: prime one block
    specialized.fetch_decode(program.entry)
    assert any(i.exec_fn is not None
               for i in specialized.decode_cache.entries.values())
    assert all(i.exec_fn is None
               for i in plain.decode_cache.entries.values())
    _lockstep(specialized, plain, n_regs=16)


@pytest.mark.parametrize("name", ["gsm_dec", "g721_enc"])
def test_ppc_specialized_lockstep(name):
    program = asm_ppc(mediabench.ppc_source(name))
    specialized = PpcInterpreter(program, specialize=True)
    plain = PpcInterpreter(program, specialize=False)
    specialized.fetch_decode(program.entry)
    assert any(i.exec_fn is not None
               for i in specialized.decode_cache.entries.values())
    _lockstep(specialized, plain, n_regs=32)
