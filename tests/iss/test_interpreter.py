"""Tests for the instruction-set simulators and syscall handling."""

import pytest

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import ArmInterpreter, IssError, PpcInterpreter, SyscallHandler
from repro.iss.syscalls import SyscallError

from ..conftest import arm_program


class TestArmInterpreter:
    def test_run_returns_exit_code(self):
        interpreter = ArmInterpreter(asm_arm(arm_program("    mov r0, #7")))
        assert interpreter.run() == 7
        assert interpreter.state.halted

    def test_stack_pointer_initialised(self):
        interpreter = ArmInterpreter(asm_arm(arm_program("    mov r0, #0")),
                                     stack_top=0x12345)
        from repro.isa.arm.isa import SP

        assert interpreter.state.read_reg(SP) == 0x12345

    def test_step_after_halt_raises(self):
        interpreter = ArmInterpreter(asm_arm(arm_program("    mov r0, #0")))
        interpreter.run()
        with pytest.raises(IssError):
            interpreter.step()

    def test_instruction_budget(self):
        source = """
    .text
_start:
    b _start
"""
        interpreter = ArmInterpreter(asm_arm(source))
        with pytest.raises(IssError, match="exceeded"):
            interpreter.run(max_steps=100)

    def test_decode_cache_reused(self):
        source = arm_program("""
    mov r1, #3
loop:
    subs r1, r1, #1
    bne loop
""")
        interpreter = ArmInterpreter(asm_arm(source))
        interpreter.run()
        first = interpreter.fetch_decode(interpreter.program.entry)
        second = interpreter.fetch_decode(interpreter.program.entry)
        assert first is second

    def test_instret_counts_all_instructions(self):
        interpreter = ArmInterpreter(asm_arm(arm_program("""
    mov r1, #0
    moveq r2, #1
    movne r3, #1
    mov r0, #0
""")))
        interpreter.run()
        assert interpreter.state.instret == interpreter.steps


class TestPpcInterpreter:
    def test_r1_is_stack(self):
        interpreter = PpcInterpreter(asm_ppc("""
    .text
_start:
    li r0, 0
    li r3, 0
    sc
"""), stack_top=0x9999)
        assert interpreter.state.read_reg(1) == 0x9999

    def test_exit(self):
        interpreter = PpcInterpreter(asm_ppc("""
    .text
_start:
    li r3, 13
    li r0, 0
    sc
"""))
        assert interpreter.run() == 13


class TestSyscallHandler:
    def _state(self):
        from repro.iss.state import ArchState

        state = ArchState(16)
        return state

    def test_getc_serves_stdin_then_eof(self):
        handler = SyscallHandler(stdin=b"ab")
        state = self._state()
        state.syscalls = handler
        handler.handle(state, 3)
        assert state.read_reg(0) == ord("a")
        handler.handle(state, 3)
        assert state.read_reg(0) == ord("b")
        handler.handle(state, 3)
        assert state.read_reg(0) == 0xFFFFFFFF

    def test_cycles_returns_instret(self):
        handler = SyscallHandler()
        state = self._state()
        state.instret = 1234
        handler.handle(state, 4)
        assert state.read_reg(0) == 1234

    def test_unknown_number_raises(self):
        handler = SyscallHandler()
        with pytest.raises(SyscallError):
            handler.handle(self._state(), 999)

    def test_exit_masks_to_byte(self):
        handler = SyscallHandler()
        state = self._state()
        state.write_reg(0, 0x1FF)
        handler.handle(state, 0)
        assert state.exit_code == 0xFF
        assert state.halted
