"""Tests for the dynamically-compiled ISS."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter, CompiledArmInterpreter, IssError

from ..conftest import arm_program


def differential(body: str, data: str = "", stdin: bytes = b""):
    source = arm_program(body, data)
    interpreted = ArmInterpreter(assemble(source), stdin=stdin)
    interpreted.run(500_000)
    compiled = CompiledArmInterpreter(assemble(source), stdin=stdin)
    compiled.run()
    assert compiled.state.exit_code == interpreted.state.exit_code
    assert compiled.state.regs.values == interpreted.state.regs.values
    assert compiled.state.instret == interpreted.state.instret
    assert compiled.syscalls.output == interpreted.syscalls.output
    return compiled


class TestCompiledIss:
    def test_arithmetic_block(self):
        differential("""
    mov r1, #10
    add r2, r1, #5
    sub r3, r2, r1
    mul r4, r3, r2
    orr r5, r4, #1
""")

    def test_flags_and_conditionals(self):
        differential("""
    mov r1, #5
    cmp r1, #5
    moveq r2, #1
    movne r3, #1
    adds r4, r1, r1
    adc  r5, r4, #0
    li   r6, 0xFFFFFFFF
    adds r7, r6, r6
    adc  r9, r1, #0
""")

    def test_shifts_and_rotates(self):
        differential("""
    li  r1, 0x80000001
    mov r2, r1, lsl #3
    mov r3, r1, lsr #3
    mov r4, r1, asr #3
    mov r5, r1, ror #8
""")

    def test_memory_and_byte_ops(self):
        differential("""
    li   r1, buf
    li   r2, 0xDEADBEEF
    str  r2, [r1]
    ldr  r3, [r1]
    ldrb r4, [r1, #2]
    strb r3, [r1, #8]
    ldr  r5, [r1, #8]
""", data="buf: .space 16")

    def test_loops_reuse_compiled_blocks(self):
        compiled = differential("""
    mov r1, #0
lp:
    add r1, r1, #1
    cmp r1, #50
    blt lp
    mov r0, r1
""")
        assert compiled.block_runs > compiled.blocks_compiled

    def test_calls_and_long_multiply(self):
        differential("""
    li    r1, 0x12345678
    mov   r2, #100
    umull r3, r4, r1, r2
    smull r5, r6, r1, r2
    bl    fn
    b     end
fn:
    add   r7, r7, #1
    bx    lr
end:
    mov   r0, r7
""")

    def test_syscall_io(self):
        compiled = differential("""
    swi #3          ; getc -> 'A'
    swi #1          ; putc
    mov r0, #0
""", stdin=b"A")
        assert compiled.syscalls.output_text == "A"

    def test_undefined_instruction_raises(self):
        source = """
    .text
_start:
    .word 0xFFFFFFFF
"""
        compiled = CompiledArmInterpreter(assemble(source))
        with pytest.raises(IssError):
            compiled.run()

    def test_block_budget(self):
        compiled = CompiledArmInterpreter(assemble("""
    .text
_start:
    b _start
"""))
        with pytest.raises(IssError, match="exceeded"):
            compiled.run(max_blocks=50)

    @pytest.mark.parametrize("name", ["gsm_dec", "g721_enc", "mpeg2_enc"])
    def test_mediabench_differential(self, name):
        from repro.workloads import mediabench

        source = mediabench.arm_source(name)
        interpreted = ArmInterpreter(assemble(source))
        interpreted.run()
        compiled = CompiledArmInterpreter(assemble(source))
        compiled.run()
        assert compiled.state.exit_code == interpreted.state.exit_code
        assert compiled.state.instret == interpreted.state.instret

    def test_compiled_is_faster_on_hot_loops(self):
        import time

        from repro.workloads import mediabench

        source = mediabench.arm_source("gsm_enc", scale=8)
        interpreted = ArmInterpreter(assemble(source))
        start = time.perf_counter()
        interpreted.run()
        interpreted_time = time.perf_counter() - start
        compiled = CompiledArmInterpreter(assemble(source))
        start = time.perf_counter()
        compiled.run()
        compiled_time = time.perf_counter() - start
        assert compiled_time < interpreted_time


@st.composite
def straightline(draw):
    lines = []
    for reg in range(1, 5):
        lines.append(f"    li r{reg}, {draw(st.integers(0, 0xFFFFFFFF))}")
    ops = st.sampled_from([
        "add", "adds", "sub", "subs", "and", "ands", "orr", "eor", "bic",
    ])
    for _ in range(draw(st.integers(2, 10))):
        op = draw(ops)
        lines.append(
            f"    {op} r{draw(st.integers(1, 6))}, "
            f"r{draw(st.integers(1, 6))}, r{draw(st.integers(1, 6))}"
        )
    lines.append("    adc r7, r1, #0")  # consume the final carry
    return "\n".join(lines)


class TestCompiledProperty:
    @settings(max_examples=25, deadline=None)
    @given(straightline())
    def test_random_alu_blocks_match_interpreter(self, body):
        differential(body + "\n    mov r0, #0")
