"""Self-modifying-code regression tests for the decode caches.

The seed implementation memoised decoded instructions by address and
never invalidated the cache, so a program that stored over its own text
kept executing the stale decode.  These tests pin the fixed contract: a
memory write overlapping a cached instruction's bytes drops the entry and
the next fetch re-decodes.
"""

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import (ArmInterpreter, CompiledArmInterpreter,
                       CompiledPpcInterpreter, PpcInterpreter)
from repro.iss.decode_cache import PAGE_SHIFT
from repro.memory.mainmem import MainMemory

from ..conftest import arm_program, ppc_program


def _arm_encoding(instruction: str) -> int:
    """The 32-bit encoding of a single ARM instruction."""
    program = asm_arm(arm_program(instruction))
    memory = MainMemory()
    program.load_into(memory)
    return memory.read_word(program.entry)


def _ppc_encoding(instruction: str) -> int:
    program = asm_ppc(ppc_program(instruction))
    memory = MainMemory()
    program.load_into(memory)
    return memory.read_word(program.entry)


class TestArmSelfModify:
    def test_store_over_executed_instruction_redecodes(self):
        # `target` executes once (priming the decode cache), is then
        # overwritten with `mov r0, #42`, and executes again.  With a
        # never-invalidated cache the second pass re-runs the stale
        # `mov r0, #1` and the program exits with 1 instead of 42.
        patch_word = _arm_encoding("    mov r0, #42")
        source = arm_program(f"""
    mov  r4, #0
    li   r1, target
    li   r2, patch
loop:
target:
    mov  r0, #1
    cmp  r4, #1
    beq  done
    mov  r4, #1
    ldr  r3, [r2]
    str  r3, [r1]
    b    loop
done:
""", data=f"patch: .word {patch_word:#010x}")
        interpreter = ArmInterpreter(asm_arm(source))
        assert interpreter.run(10_000) == 42
        assert interpreter.decode_cache.invalidations >= 1

    def test_byte_store_invalidates_overlapping_instruction(self):
        # A one-byte store into the middle of a cached instruction must
        # also drop it: `mov r0, #1` has its immediate in the low byte,
        # so patching that byte to 7 changes the re-decoded result.
        source = arm_program("""
    mov  r4, #0
    li   r1, target
loop:
target:
    mov  r0, #1
    cmp  r4, #1
    beq  done
    mov  r4, #1
    mov  r3, #7
    strb r3, [r1]
    b    loop
done:
""")
        interpreter = ArmInterpreter(asm_arm(source))
        assert interpreter.run(10_000) == 7

    def test_unmodified_code_still_cached(self):
        interpreter = ArmInterpreter(asm_arm(arm_program("    mov r0, #3")))
        entry = interpreter.program.entry
        first = interpreter.fetch_decode(entry)
        assert interpreter.fetch_decode(entry) is first
        # a store elsewhere leaves the entry alone
        interpreter.state.memory.write_word(0x7000, 0xDEAD)
        assert interpreter.fetch_decode(entry) is first
        # a store over it forces a re-decode of identical bytes
        interpreter.state.memory.write_word(entry, first.word)
        assert interpreter.fetch_decode(entry) is not first


class TestPpcSelfModify:
    def test_store_over_executed_instruction_redecodes(self):
        patch_word = _ppc_encoding("    li r3, 42")
        source = ppc_program(f"""
    li    r8, 0
    li32  r4, target
    li32  r5, patch
    lwz   r6, 0(r5)
loop:
target:
    li    r3, 1
    cmpwi r8, 1
    beq   done
    li    r8, 1
    stw   r6, 0(r4)
    b     loop
done:
""", data=f"patch: .word {patch_word:#010x}")
        interpreter = PpcInterpreter(asm_ppc(source))
        assert interpreter.run(10_000) == 42
        assert interpreter.decode_cache.invalidations >= 1


def _arm_midblock_source() -> str:
    """A loop whose head block caches ``target`` as its *middle*
    instruction; the tail block then stores over it."""
    patch_word = _arm_encoding("    mov r0, #42")
    return arm_program(f"""
    mov  r4, #0
    li   r1, target
    li   r2, patch
loop:
    mov  r0, #1
target:
    mov  r0, #2
    cmp  r4, #1
    beq  done
    mov  r4, #1
    ldr  r3, [r2]
    str  r3, [r1]
    b    loop
done:
""", data=f"patch: .word {patch_word:#010x}")


def _arm_sameblock_source() -> str:
    """Straight-line code whose store patches the *next* instruction in
    the currently-executing block (the store-guard case)."""
    patch_word = _arm_encoding("    mov r0, #42")
    return arm_program(f"""
    li   r1, target
    li   r2, patch
    ldr  r3, [r2]
    str  r3, [r1]
target:
    mov  r0, #1
""", data=f"patch: .word {patch_word:#010x}")


def _ppc_midblock_source() -> str:
    patch_word = _ppc_encoding("    li r3, 42")
    return ppc_program(f"""
    li    r8, 0
    li32  r4, target
    li32  r5, patch
    lwz   r6, 0(r5)
loop:
    li    r3, 1
target:
    li    r3, 2
    cmpwi r8, 1
    beq   done
    li    r8, 1
    stw   r6, 0(r4)
    b     loop
done:
""", data=f"patch: .word {patch_word:#010x}")


def _ppc_sameblock_source() -> str:
    patch_word = _ppc_encoding("    li r3, 42")
    return ppc_program(f"""
    li32  r4, target
    li32  r5, patch
    lwz   r6, 0(r5)
    stw   r6, 0(r4)
target:
    li    r3, 1
""", data=f"patch: .word {patch_word:#010x}")


class TestBlockSelfModify:
    """The basic-block layer: stores into cached blocks must drop them
    (and their bound executors) wherever in the block they land."""

    def test_arm_store_into_middle_of_cached_block(self):
        interpreter = ArmInterpreter(asm_arm(_arm_midblock_source()))
        assert interpreter.run(10_000) == 42
        assert interpreter.decode_cache.block_invalidations >= 1

    def test_arm_store_guard_stops_current_block(self):
        # The store and its victim share a block: the run loop must stop
        # at the instruction boundary instead of finishing the stale tail.
        interpreter = ArmInterpreter(asm_arm(_arm_sameblock_source()))
        assert interpreter.run(10_000) == 42

    def test_ppc_store_into_middle_of_cached_block(self):
        interpreter = PpcInterpreter(asm_ppc(_ppc_midblock_source()))
        assert interpreter.run(10_000) == 42
        assert interpreter.decode_cache.block_invalidations >= 1

    def test_ppc_store_guard_stops_current_block(self):
        interpreter = PpcInterpreter(asm_ppc(_ppc_sameblock_source()))
        assert interpreter.run(10_000) == 42

    def test_arm_write_straddling_two_blocks_drops_both(self):
        source = arm_program("""
    b    first
first:
    mov  r0, #1
    b    second
second:
    mov  r0, #2
    b    third
third:
    mov  r0, #3
""")
        interpreter = ArmInterpreter(asm_arm(source))
        cache = interpreter.decode_cache
        entry = interpreter.program.entry
        block_a = cache.fetch_block(entry + 4)
        block_b = cache.fetch_block(block_a.end)
        assert block_a.valid and block_b.valid
        # 8 bytes spanning A's last word and B's first word: both die
        memory = interpreter.state.memory
        span = memory.read_block(block_a.end - 4, 8)
        memory.write_block(block_a.end - 4, span)
        assert not block_a.valid and not block_b.valid
        assert cache.blocks.get(block_a.entry) is None
        assert cache.blocks.get(block_b.entry) is None
        assert cache.block_invalidations >= 2

    def test_ppc_write_straddling_two_blocks_drops_both(self):
        source = ppc_program("""
    b    first
first:
    li   r3, 1
    b    second
second:
    li   r3, 2
    b    third
third:
    li   r3, 3
""")
        interpreter = PpcInterpreter(asm_ppc(source))
        cache = interpreter.decode_cache
        entry = interpreter.program.entry
        block_a = cache.fetch_block(entry + 4)
        block_b = cache.fetch_block(block_a.end)
        memory = interpreter.state.memory
        span = memory.read_block(block_a.end - 4, 8)
        memory.write_block(block_a.end - 4, span)
        assert not block_a.valid and not block_b.valid
        assert cache.block_invalidations >= 2


class TestWideWriteInvalidation:
    """A single wide ``write_block`` must invalidate exactly the cached
    entries its byte span overlaps — across every page it touches — and
    leave neighbours on either side cached."""

    def test_wide_write_spans_pages(self):
        page = 1 << PAGE_SHIFT
        body = "\n".join("    mov  r0, #1" for _ in range(3 * page // 4 + 8))
        interpreter = ArmInterpreter(asm_arm(arm_program(body)))
        cache = interpreter.decode_cache
        entry = interpreter.program.entry
        kept_low = cache.fetch(entry)
        cache.fetch(entry + page)
        cache.fetch(entry + 2 * page)
        kept_high = cache.fetch(entry + 3 * page)
        # rewrite two whole pages with their own bytes: same text, but
        # the cached decodes in [entry+page, entry+3*page) must drop
        memory = interpreter.state.memory
        span = memory.read_block(entry + page, 2 * page)
        memory.write_block(entry + page, span)
        assert cache.invalidations == 2
        assert entry + page not in cache.entries
        assert entry + 2 * page not in cache.entries
        assert cache.fetch(entry) is kept_low
        assert cache.fetch(entry + 3 * page) is kept_high


class TestCompiledSelfModify:
    """The dynamically-compiling ISSs share the decode cache, so stores
    over translated code must drop the stale translation too — including
    a store whose victim is later in the currently-running block."""

    def test_arm_compiled_store_over_cached_block(self):
        assert CompiledArmInterpreter(asm_arm(_arm_midblock_source())).run() == 42

    def test_arm_compiled_store_guard_same_block(self):
        assert CompiledArmInterpreter(asm_arm(_arm_sameblock_source())).run() == 42

    def test_ppc_compiled_store_over_cached_block(self):
        assert CompiledPpcInterpreter(asm_ppc(_ppc_midblock_source())).run() == 42

    def test_ppc_compiled_store_guard_same_block(self):
        assert CompiledPpcInterpreter(asm_ppc(_ppc_sameblock_source())).run() == 42


class TestWriteHookPlumbing:
    def test_hooks_fire_once_per_span(self):
        memory = MainMemory()
        spans = []
        memory.add_write_hook(lambda address, length: spans.append((address, length)))
        memory.write_byte(0x100, 0xAA)
        memory.write_half(0x200, 0xBBCC)
        memory.write_word(0x300, 0x11223344)
        memory.write_block(0x400, b"\x01\x02\x03\x04\x05")
        assert spans == [(0x100, 1), (0x200, 2), (0x300, 4), (0x400, 5)]

    def test_remove_write_hook(self):
        memory = MainMemory()
        spans = []

        def hook(address, length):
            spans.append((address, length))

        memory.add_write_hook(hook)
        memory.write_byte(0, 1)
        memory.remove_write_hook(hook)
        memory.write_byte(0, 2)
        assert spans == [(0, 1)]
