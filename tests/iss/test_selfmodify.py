"""Self-modifying-code regression tests for the decode caches.

The seed implementation memoised decoded instructions by address and
never invalidated the cache, so a program that stored over its own text
kept executing the stale decode.  These tests pin the fixed contract: a
memory write overlapping a cached instruction's bytes drops the entry and
the next fetch re-decodes.
"""

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import ArmInterpreter, PpcInterpreter
from repro.memory.mainmem import MainMemory

from ..conftest import arm_program, ppc_program


def _arm_encoding(instruction: str) -> int:
    """The 32-bit encoding of a single ARM instruction."""
    program = asm_arm(arm_program(instruction))
    memory = MainMemory()
    program.load_into(memory)
    return memory.read_word(program.entry)


def _ppc_encoding(instruction: str) -> int:
    program = asm_ppc(ppc_program(instruction))
    memory = MainMemory()
    program.load_into(memory)
    return memory.read_word(program.entry)


class TestArmSelfModify:
    def test_store_over_executed_instruction_redecodes(self):
        # `target` executes once (priming the decode cache), is then
        # overwritten with `mov r0, #42`, and executes again.  With a
        # never-invalidated cache the second pass re-runs the stale
        # `mov r0, #1` and the program exits with 1 instead of 42.
        patch_word = _arm_encoding("    mov r0, #42")
        source = arm_program(f"""
    mov  r4, #0
    li   r1, target
    li   r2, patch
loop:
target:
    mov  r0, #1
    cmp  r4, #1
    beq  done
    mov  r4, #1
    ldr  r3, [r2]
    str  r3, [r1]
    b    loop
done:
""", data=f"patch: .word {patch_word:#010x}")
        interpreter = ArmInterpreter(asm_arm(source))
        assert interpreter.run(10_000) == 42
        assert interpreter.decode_cache.invalidations >= 1

    def test_byte_store_invalidates_overlapping_instruction(self):
        # A one-byte store into the middle of a cached instruction must
        # also drop it: `mov r0, #1` has its immediate in the low byte,
        # so patching that byte to 7 changes the re-decoded result.
        source = arm_program("""
    mov  r4, #0
    li   r1, target
loop:
target:
    mov  r0, #1
    cmp  r4, #1
    beq  done
    mov  r4, #1
    mov  r3, #7
    strb r3, [r1]
    b    loop
done:
""")
        interpreter = ArmInterpreter(asm_arm(source))
        assert interpreter.run(10_000) == 7

    def test_unmodified_code_still_cached(self):
        interpreter = ArmInterpreter(asm_arm(arm_program("    mov r0, #3")))
        entry = interpreter.program.entry
        first = interpreter.fetch_decode(entry)
        assert interpreter.fetch_decode(entry) is first
        # a store elsewhere leaves the entry alone
        interpreter.state.memory.write_word(0x7000, 0xDEAD)
        assert interpreter.fetch_decode(entry) is first
        # a store over it forces a re-decode of identical bytes
        interpreter.state.memory.write_word(entry, first.word)
        assert interpreter.fetch_decode(entry) is not first


class TestPpcSelfModify:
    def test_store_over_executed_instruction_redecodes(self):
        patch_word = _ppc_encoding("    li r3, 42")
        source = ppc_program(f"""
    li    r8, 0
    li32  r4, target
    li32  r5, patch
    lwz   r6, 0(r5)
loop:
target:
    li    r3, 1
    cmpwi r8, 1
    beq   done
    li    r8, 1
    stw   r6, 0(r4)
    b     loop
done:
""", data=f"patch: .word {patch_word:#010x}")
        interpreter = PpcInterpreter(asm_ppc(source))
        assert interpreter.run(10_000) == 42
        assert interpreter.decode_cache.invalidations >= 1


class TestWriteHookPlumbing:
    def test_hooks_fire_once_per_span(self):
        memory = MainMemory()
        spans = []
        memory.add_write_hook(lambda address, length: spans.append((address, length)))
        memory.write_byte(0x100, 0xAA)
        memory.write_half(0x200, 0xBBCC)
        memory.write_word(0x300, 0x11223344)
        memory.write_block(0x400, b"\x01\x02\x03\x04\x05")
        assert spans == [(0x100, 1), (0x200, 2), (0x300, 4), (0x400, 5)]

    def test_remove_write_hook(self):
        memory = MainMemory()
        spans = []

        def hook(address, length):
            spans.append((address, length))

        memory.add_write_hook(hook)
        memory.write_byte(0, 1)
        memory.remove_write_hook(hook)
        memory.write_byte(0, 2)
        assert spans == [(0, 1)]
