"""Test package."""
