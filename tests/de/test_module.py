"""Tests for wires, ports and module plumbing."""

import pytest

from repro.de import Clock, Port, PortModule, Wire


class TestWire:
    def test_write_invisible_until_update(self):
        wire = Wire("w", 0)
        wire.write(5)
        assert wire.read() == 0
        assert wire.update() is True
        assert wire.read() == 5

    def test_update_reports_no_change(self):
        wire = Wire("w", 3)
        wire.write(3)
        assert wire.update() is False

    def test_watchers_fire_on_change(self):
        wire = Wire("w", 0)
        seen = []
        wire.watchers.append(seen.append)
        wire.write(1)
        wire.update()
        wire.write(1)
        wire.update()
        assert seen == [1]


class TestPort:
    def test_directions(self):
        wire = Wire("w", 0)
        out_port = Port("o", "out")
        out_port.bind(wire)
        out_port.write(4)
        wire.update()
        assert out_port.read() == 4  # sc_out is readable
        in_port = Port("i", "in")
        in_port.bind(wire)
        with pytest.raises(ValueError):
            in_port.write(1)

    def test_unbound_port_errors(self):
        port = Port("p", "in")
        with pytest.raises(ValueError, match="unbound"):
            port.read()

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            Port("p", "sideways")


class TestPortModule:
    def test_port_registration(self):
        module = PortModule("m")
        port = module.port("data", "in")
        assert module.ports["data"] is port
        assert port.name == "m.data"


class TestClock:
    def test_edges(self):
        clock = Clock(period=2, phases=2)
        gen = clock.edges()
        assert [next(gen) for _ in range(4)] == [0, 1, 2, 3]

    def test_single_phase(self):
        clock = Clock(period=1)
        gen = clock.edges(start=5)
        assert [next(gen) for _ in range(3)] == [5, 6, 7]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Clock(period=0)
        with pytest.raises(ValueError):
            Clock(phases=3)
