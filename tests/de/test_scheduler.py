"""Tests for the discrete-event and delta-cycle schedulers."""

import pytest

from repro.de import DeltaCycleSimulator, DiscreteEventScheduler, PortModule


class TestDiscreteEventScheduler:
    def test_run_until_executes_strictly_before(self):
        scheduler = DiscreteEventScheduler()
        fired = []
        scheduler.schedule(3, lambda: fired.append(3))
        scheduler.schedule(5, lambda: fired.append(5))
        scheduler.run_until(5)
        assert fired == [3]
        assert scheduler.now == 5
        scheduler.run_until(6)
        assert fired == [3, 5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEventScheduler().schedule(-1, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        scheduler = DiscreteEventScheduler()
        scheduler.run_until(10)
        with pytest.raises(ValueError):
            scheduler.schedule_at(5, lambda: None)

    def test_events_may_schedule_events(self):
        scheduler = DiscreteEventScheduler()
        fired = []

        def cascade():
            fired.append(scheduler.now)
            if scheduler.now < 3:
                scheduler.schedule(1, cascade)

        scheduler.schedule(1, cascade)
        scheduler.run_all()
        assert fired == [1, 2, 3]

    def test_run_all_with_horizon(self):
        scheduler = DiscreteEventScheduler()
        fired = []
        for t in (1, 2, 8):
            scheduler.schedule(t, lambda t=t: fired.append(t))
        scheduler.run_all(horizon=4)
        assert fired == [1, 2]

    def test_run_all_horizon_matches_run_until_boundary(self):
        # Regression: run_all(horizon) used to run events at t == horizon
        # (while run_until excluded them) and left `now` at the last event
        # instead of the horizon.  Both methods now share the half-open
        # [now, horizon) contract.
        a = DiscreteEventScheduler()
        b = DiscreteEventScheduler()
        fired_a, fired_b = [], []
        for scheduler, fired in ((a, fired_a), (b, fired_b)):
            for t in (2, 5, 7):
                scheduler.schedule(t, lambda t=t, fired=fired: fired.append(t))
        a.run_all(horizon=5)
        b.run_until(5)
        assert fired_a == fired_b == [2]  # the t == 5 event stays queued
        assert a.now == b.now == 5
        a.run_all(horizon=6)
        assert fired_a == [2, 5]

    def test_run_all_horizon_advances_now_without_events(self):
        scheduler = DiscreteEventScheduler()
        fired = []
        scheduler.run_all(horizon=10)
        assert scheduler.now == 10
        # relative scheduling is anchored at the horizon
        scheduler.schedule(2, lambda: fired.append(scheduler.now))
        scheduler.run_all()
        assert fired == [12]


class _Inverter(PortModule):
    """out = not in; used to build a combinational loop."""

    def __init__(self, name):
        super().__init__(name)
        self.p_in = self.port("in", "in")
        self.p_out = self.port("out", "out")

    def evaluate(self, cycle):
        self.p_out.write(not self.p_in.read())


class TestDeltaCycleSimulator:
    def test_settles_chain_in_one_step(self):
        sim = DeltaCycleSimulator()
        a, b = _Inverter("a"), _Inverter("b")
        sim.add_module(a)
        sim.add_module(b)
        w_in = sim.wire("w_in", False)
        w_mid = sim.wire("w_mid", False)
        w_out = sim.wire("w_out", False)
        a.p_in.bind(w_in)
        a.p_out.bind(w_mid)
        b.p_in.bind(w_mid)
        b.p_out.bind(w_out)
        sim.step()
        assert w_mid.read() is True
        assert w_out.read() is False  # double inversion

    def test_combinational_loop_detected(self):
        sim = DeltaCycleSimulator(max_deltas=8)
        a = _Inverter("a")
        sim.add_module(a)
        loop = sim.wire("loop", False)
        a.p_in.bind(loop)
        a.p_out.bind(loop)  # oscillates forever
        with pytest.raises(RuntimeError, match="settle"):
            sim.step()

    def test_on_clock_runs_before_evaluate(self):
        order = []

        class M(PortModule):
            def on_clock(self, cycle):
                order.append(("clock", cycle))

            def evaluate(self, cycle):
                if not order or order[-1][0] != "eval":
                    order.append(("eval", cycle))

        sim = DeltaCycleSimulator()
        sim.add_module(M("m"))
        sim.step()
        assert order[0] == ("clock", 0)
        assert order[1] == ("eval", 0)
