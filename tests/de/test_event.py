"""Tests for events and the event queue."""

from repro.de import Event, EventQueue


class TestEventQueue:
    def test_timestamp_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(5, lambda: order.append(5))
        queue.schedule(1, lambda: order.append(1))
        queue.schedule(3, lambda: order.append(3))
        while not queue.empty:
            queue.pop().run()
        assert order == [1, 3, 5]

    def test_ties_run_in_insertion_order(self):
        queue = EventQueue()
        order = []
        for tag in "abc":
            queue.schedule(7, lambda t=tag: order.append(t))
        while not queue.empty:
            queue.pop().run()
        assert order == ["a", "b", "c"]

    def test_cancelled_events_are_dropped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1, lambda: fired.append("no"))
        queue.schedule(2, lambda: fired.append("yes"))
        event.cancel()
        while not queue.empty:
            popped = queue.pop()
            if popped is not None:
                popped.run()
        assert fired == ["yes"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(1, lambda: None)
        queue.schedule(9, lambda: None)
        event.cancel()
        assert queue.peek_time() == 9

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_len(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        assert len(queue) == 2


class TestEvent:
    def test_cancelled_event_does_not_run(self):
        fired = []
        event = Event(0, lambda: fired.append(1))
        event.cancel()
        event.run()
        assert fired == []
