"""CLI surface of the fleet layer, and the ``bench --out`` merge fix."""

import json
import threading

import pytest

from repro.cli import _merge_bench_rows, main
from repro.fleet import FleetServer

JOB = {
    "model": "strongarm",
    "workload": {"kind": "source", "text": """
    .text
_start:
    mov r0, #9
    swi #0
"""},
    "config": {"perfect_memory": True},
    "seed": 1,
}


@pytest.fixture()
def server():
    server = FleetServer(host="127.0.0.1", port=0, workers=0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()


def _port_args(server):
    return ["--host", server.address[0], "--port", str(server.address[1])]


class TestSubmitCli:
    def test_ping(self, server, capsys):
        assert main(["submit", *_port_args(server), "--ping"]) == 0
        assert json.loads(capsys.readouterr().out)["type"] == "pong"

    def test_jobs_file_roundtrip(self, server, tmp_path, capsys):
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(json.dumps([JOB]))
        assert main(["submit", *_port_args(server), str(jobs_file)]) == 0
        out = capsys.readouterr().out
        assert "1 jobs: 1 executed" in out

    def test_json_stream(self, server, tmp_path, capsys):
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(json.dumps(JOB))  # bare object is accepted
        assert main(["submit", *_port_args(server), "--json",
                     str(jobs_file)]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert [m["type"] for m in lines] == ["result", "summary"]
        assert lines[0]["result"]["metrics"]["exit_code"] == 9

    def test_resubmit_reports_cache_hits(self, server, tmp_path, capsys):
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(json.dumps([JOB]))
        main(["submit", *_port_args(server), str(jobs_file)])
        capsys.readouterr()
        assert main(["submit", *_port_args(server), "--json",
                     str(jobs_file)]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert lines[-1]["cache_hits"] == 1

    def test_bad_jobs_file_rejected(self, server, tmp_path):
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text("not json")
        with pytest.raises(SystemExit):
            main(["submit", *_port_args(server), str(jobs_file)])

    def test_unreachable_server_is_exit_1(self, capsys):
        assert main(["submit", "--port", "1", "--ping"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_job_error_is_exit_1(self, server, tmp_path, capsys):
        jobs_file = tmp_path / "jobs.json"
        bad = {**JOB, "workload": {"kind": "source", "text": "bogus r9"}}
        jobs_file.write_text(json.dumps([bad]))
        assert main(["submit", *_port_args(server), str(jobs_file)]) == 1

    def test_shutdown(self, server, capsys):
        assert main(["submit", *_port_args(server), "--shutdown"]) == 0
        assert json.loads(capsys.readouterr().out)["type"] == "bye"


class TestFleetBenchCli:
    def test_quick_bench_writes_row(self, tmp_path, capsys, monkeypatch):
        # serial workers keep this CI-cheap; the sweep is the real matrix
        out = tmp_path / "BENCH_fleet.json"
        assert main(["fleet-bench", "--quick", "--workers", "0",
                     "--out", str(out), "--json"]) == 0
        row = json.loads(out.read_text())
        assert row["bench"] == "fleet"
        assert row["jobs_per_second"] > 0
        assert row["cache_hit_rate"] >= 0.9
        assert row["results_identical"] is True
        assert row["ok"] is True
        printed = json.loads(capsys.readouterr().out)
        assert printed == row


class TestBenchOutMerge:
    """``repro bench --out`` must merge, not clobber (the old behaviour
    lost every other model's rows on a partial rerun)."""

    @staticmethod
    def _row(model, quick=True, fused=True, marker=0):
        return {"bench": "speed", "model": model, "quick": quick,
                "fused": fused, "marker": marker}

    def test_partial_rerun_preserves_other_rows(self, tmp_path):
        out = str(tmp_path / "bench.json")
        _merge_bench_rows(out, [self._row("strongarm", marker=1),
                                self._row("ppc750", marker=1)])
        _merge_bench_rows(out, [self._row("strongarm", marker=2)])
        rows = json.loads(open(out).read())
        by_model = {row["model"]: row for row in rows}
        assert by_model["strongarm"]["marker"] == 2
        assert by_model["ppc750"]["marker"] == 1

    def test_distinct_modes_do_not_collide(self, tmp_path):
        out = str(tmp_path / "bench.json")
        _merge_bench_rows(out, [self._row("strongarm", fused=True)])
        _merge_bench_rows(out, [self._row("strongarm", fused=False)])
        _merge_bench_rows(out, [self._row("strongarm", quick=False)])
        assert len(json.loads(open(out).read())) == 3

    def test_legacy_single_object_file_upgraded(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text(json.dumps(self._row("ppc750", marker=7)))
        _merge_bench_rows(str(out), [self._row("strongarm", marker=8)])
        rows = json.loads(out.read_text())
        assert [r["model"] for r in rows] == ["ppc750", "strongarm"]

    def test_corrupt_file_does_not_lose_the_new_rows(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text("{torn")
        _merge_bench_rows(str(out), [self._row("strongarm")])
        assert len(json.loads(out.read_text())) == 1

    def test_cli_end_to_end_merge(self, tmp_path, monkeypatch):
        """Drive the real ``bench`` command twice with a stubbed model
        bench and assert the second run keeps the first run's row."""
        import repro.cli as cli

        calls = []

        def fake_bench(model_name, args, fused):
            calls.append(model_name)
            return {"bench": "speed", "model": model_name,
                    "quick": bool(args.quick), "fused": fused,
                    "run": len(calls), "mismatches": []}

        monkeypatch.setattr(cli, "_bench_model", fake_bench)
        out = str(tmp_path / "bench.json")
        assert main(["bench", "--quick", "--json", "--out", out]) == 0  # cases
        assert main(["bench", "--quick", "--json", "--model", "strongarm",
                     "--out", out]) == 0
        rows = json.loads(open(out).read())
        by_model = {row["model"]: row for row in rows}
        assert set(by_model) == {"strongarm", "ppc750"}
        assert by_model["strongarm"]["run"] == 3  # replaced by the rerun
        assert by_model["ppc750"]["run"] == 2     # survived the rerun
