"""Result cache backends: hits, misses, corruption, atomicity."""

import json
import os

import pytest

from repro.fleet import MemoryCache, ResultCache, open_cache

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62


@pytest.fixture(params=["memory", "disk"])
def cache(request, tmp_path):
    if request.param == "memory":
        return MemoryCache()
    return ResultCache(str(tmp_path / "cache"))


class TestCacheContract:
    def test_miss_then_hit(self, cache):
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"metrics": {"cycles": 42}})
        assert cache.get(KEY_A) == {"metrics": {"cycles": 42}}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_len_counts_entries(self, cache):
        assert len(cache) == 0
        cache.put(KEY_A, {"v": 1})
        cache.put(KEY_B, {"v": 2})
        cache.put(KEY_A, {"v": 3})  # overwrite, not a new entry
        assert len(cache) == 2

    def test_payload_identity_across_get(self, cache):
        payload = {"metrics": {"cycles": 7, "ipc": 0.5}, "model": "strongarm"}
        cache.put(KEY_A, payload)
        assert cache.get(KEY_A) == cache.get(KEY_A) == payload


class TestResultCache:
    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY_A, {"v": 1})
        assert os.path.exists(tmp_path / KEY_A[:2] / (KEY_A + ".json"))

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY_A, {"v": 1})
        path = tmp_path / KEY_A[:2] / (KEY_A + ".json")
        path.write_text("{torn write")
        assert cache.get(KEY_A) is None
        assert not path.exists()
        cache.put(KEY_A, {"v": 2})
        assert cache.get(KEY_A) == {"v": 2}

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.get("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.put("ZZ" + "0" * 62, {})

    def test_persists_across_instances(self, tmp_path):
        ResultCache(str(tmp_path)).put(KEY_A, {"v": 1})
        again = ResultCache(str(tmp_path))
        assert again.get(KEY_A) == {"v": 1}

    def test_no_tmp_litter_after_put(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY_A, {"v": 1})
        leftovers = [name for _, _, names in os.walk(tmp_path)
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []

    def test_entry_is_plain_sorted_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY_A, {"b": 1, "a": 2})
        text = (tmp_path / KEY_A[:2] / (KEY_A + ".json")).read_text()
        assert json.loads(text) == {"a": 2, "b": 1}
        assert text.index('"a"') < text.index('"b"')


class TestOpenCache:
    def test_picks_backend(self, tmp_path):
        assert isinstance(open_cache(None), MemoryCache)
        disk = open_cache(str(tmp_path / "c"))
        assert isinstance(disk, ResultCache)
        assert disk.persistent and not open_cache(None).persistent
