"""Cross-process determinism: the property that makes caching sound.

The fleet cache serves a stored payload in place of re-simulating, so a
result computed in a freshly ``spawn``-ed worker process must be
bit-identical to one computed in-process (a spawned interpreter imports
every module from scratch — nothing can lean on inherited state).  These
tests pin exactly that, plus the cache-hit half of the contract: a hit
returns a payload identical to the fresh computation it replaced.
"""

import json
import multiprocessing

import pytest

from repro.fleet import FleetRunner, Job, job_key, run_job
from repro.fleet.worker import run_job_with_key

JOB = {
    "model": "strongarm",
    "workload": {"kind": "kernel", "name": "stride8"},
    "config": {"dcache": {"size": 512, "line_size": 32, "assoc": 4,
                          "miss_penalty": 26},
               "icache": None, "itlb": None, "dtlb": None,
               "perfect_memory": False},
    "seed": 1,
}


@pytest.fixture(scope="module")
def spawned_outcome():
    """JOB's outcome computed in a freshly spawned worker process."""
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=1) as pool:
        return pool.apply(run_job_with_key, (dict(JOB),))


class TestCrossProcessDeterminism:
    def test_spawned_result_matches_in_process(self, spawned_outcome):
        local = run_job(dict(JOB))
        assert local["ok"] and spawned_outcome["ok"]
        assert spawned_outcome["result"] == local["result"]
        # bit-identical on the wire, not merely ==
        dump = lambda p: json.dumps(p, sort_keys=True)  # noqa: E731
        assert dump(spawned_outcome["result"]) == dump(local["result"])

    def test_spawned_key_matches_in_process(self, spawned_outcome):
        assert spawned_outcome["key"] == job_key(Job.from_dict(dict(JOB)))

    def test_cache_hit_payload_is_identical(self, tmp_path, spawned_outcome):
        cache_dir = str(tmp_path / "cache")
        with FleetRunner(workers=0, cache_dir=cache_dir) as runner:
            (fresh,), _ = runner.run_sweep([dict(JOB)])
            (hit,), summary = runner.run_sweep([dict(JOB)])
        assert not fresh["cached"] and hit["cached"]
        assert summary["cache_hit_rate"] == 1.0
        assert hit["result"] == fresh["result"]
        # and both match the independently spawned computation
        assert hit["result"] == spawned_outcome["result"]
