"""Fleet layer tests."""
