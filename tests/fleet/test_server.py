"""Fleet server/client protocol over a real socket (ephemeral port)."""

import threading

import pytest

from repro.fleet import FleetClient, FleetClientError, FleetServer

JOBS = [
    {
        "model": "strongarm",
        "workload": {"kind": "source", "text": """
    .text
_start:
    mov r0, #3
    swi #0
"""},
        "config": {"perfect_memory": True},
        "seed": seed,
    }
    for seed in (1, 2, 3)
]


@pytest.fixture(scope="module")
def client():
    server = FleetServer(host="127.0.0.1", port=0, workers=0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    host, port = server.address
    try:
        yield FleetClient(host=host, port=port, timeout=60.0)
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()


class TestProtocol:
    def test_ping(self, client):
        pong = client.ping()
        assert pong["type"] == "pong"
        assert pong["workers"] == 0

    def test_submit_streams_results_then_summary(self, client):
        messages = list(client.submit([dict(j) for j in JOBS]))
        assert [m["type"] for m in messages] == \
               ["result", "result", "result", "summary"]
        for done, message in enumerate(messages[:-1], start=1):
            assert message["progress"] == {"completed": done, "total": 3}
        summary = messages[-1]
        assert summary["jobs"] == 3 and summary["errors"] == 0

    def test_resubmit_hits_cache(self, client):
        first, _ = client.run_sweep([dict(j) for j in JOBS])
        second, summary = client.run_sweep([dict(j) for j in JOBS])
        assert summary["cache_hit_rate"] >= 0.9
        assert all(r["cached"] for r in second)
        assert [r["result"] for r in second] == [r["result"] for r in first]

    def test_stats_reports_pool_and_cache(self, client):
        client.run_sweep([dict(JOBS[0])])
        stats = client.stats()
        assert stats["type"] == "stats"
        assert stats["executed"] >= 1
        assert stats["cache"]["entries"] >= 1
        assert stats["cache"]["persistent"] is False

    def test_bad_submit_reports_error(self, client):
        with pytest.raises(FleetClientError, match="jobs"):
            list(client.submit([]))
        with pytest.raises(FleetClientError, match="unknown fleet model"):
            list(client.submit([{"model": "cray1",
                                 "workload": {"kind": "source", "text": "x"}}]))

    def test_unknown_op_reports_error(self, client):
        with pytest.raises(FleetClientError, match="unknown op"):
            client._one({"op": "dance"})


class TestShutdown:
    def test_shutdown_stops_the_server(self):
        server = FleetServer(host="127.0.0.1", port=0, workers=0)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05}, daemon=True)
        thread.start()
        host, port = server.address
        bye = FleetClient(host=host, port=port, timeout=10.0).shutdown()
        assert bye["type"] == "bye"
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.server_close()
