"""FleetRunner: dedupe layers, cache behaviour, record shape.

These tests run with ``workers=0`` (serial in-process execution) so
they exercise the dedupe/cache/streaming logic without paying process
start-up; the multiprocess path is covered by
``tests/fleet/test_cross_process.py`` and the server tests.
"""

import pytest

from repro.fleet import FleetRunner, sweep

FAST_JOB = {
    "model": "strongarm",
    "workload": {"kind": "source", "text": """
    .text
_start:
    mov r0, #7
    swi #0
"""},
    "config": {"perfect_memory": True},
    "seed": 1,
}

OTHER_JOB = {**FAST_JOB, "seed": 2}

BAD_JOB = {**FAST_JOB, "workload": {"kind": "source", "text": "bogus r9"}}


def _runner():
    return FleetRunner(workers=0)


class TestRecords:
    def test_record_shape(self):
        with _runner() as runner:
            records, summary = runner.run_sweep([dict(FAST_JOB)])
        (record,) = records
        assert record["type"] == "result"
        assert record["job"] == 0
        assert len(record["key"]) == 64
        assert record["ok"] and not record["cached"] and not record["dedup"]
        assert record["result"]["metrics"]["exit_code"] == 7
        assert record["seconds"] > 0
        assert summary["jobs"] == 1 and summary["executed"] == 1

    def test_results_in_submission_order(self):
        jobs = [dict(FAST_JOB), dict(OTHER_JOB), dict(FAST_JOB)]
        with _runner() as runner:
            records, _ = runner.run_sweep(jobs)
        assert [r["job"] for r in records] == [0, 1, 2]

    def test_malformed_job_rejected_before_running(self):
        with _runner() as runner:
            with pytest.raises(ValueError):
                list(runner.submit([dict(FAST_JOB), {"model": "strongarm"}]))
            assert runner.executed == 0


class TestDedupe:
    def test_batch_duplicates_execute_once(self):
        with _runner() as runner:
            records, summary = runner.run_sweep(
                [dict(FAST_JOB), dict(FAST_JOB), dict(FAST_JOB)])
        assert runner.executed == 1
        assert summary["dedup_hits"] == 2
        payloads = [r["result"] for r in records]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_cache_hits_across_batches(self):
        with _runner() as runner:
            first, _ = runner.run_sweep([dict(FAST_JOB)])
            second, summary = runner.run_sweep([dict(FAST_JOB)])
        assert runner.executed == 1
        assert summary["cache_hits"] == 1
        assert second[0]["cached"] is True
        assert second[0]["result"] == first[0]["result"]

    def test_resubmitted_sweep_is_at_least_90pct_hits(self):
        jobs = [dict(FAST_JOB), dict(OTHER_JOB),
                {**FAST_JOB, "seed": 3}, {**FAST_JOB, "seed": 4}]
        with _runner() as runner:
            cold_records, cold = runner.run_sweep(jobs)
            warm_records, warm = runner.run_sweep(jobs)
        assert cold["cache_hit_rate"] == 0.0
        assert warm["cache_hit_rate"] >= 0.9
        assert [r["result"] for r in warm_records] == \
               [r["result"] for r in cold_records]


class TestErrors:
    def test_error_reported_not_raised(self):
        with _runner() as runner:
            records, summary = runner.run_sweep([dict(BAD_JOB)])
        (record,) = records
        assert record["ok"] is False
        assert "error" in record and "result" not in record
        assert summary["errors"] == 1
        assert runner.errors == 1

    def test_errors_are_not_cached(self):
        with _runner() as runner:
            runner.run_sweep([dict(BAD_JOB)])
            _, summary = runner.run_sweep([dict(BAD_JOB)])
        assert summary["cache_hits"] == 0
        assert runner.executed == 2

    def test_error_does_not_poison_good_jobs(self):
        with _runner() as runner:
            records, summary = runner.run_sweep([dict(BAD_JOB), dict(FAST_JOB)])
        assert [r["ok"] for r in records] == [False, True]
        assert summary["errors"] == 1


class TestPersistentCache:
    def test_disk_cache_survives_runner_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with FleetRunner(workers=0, cache_dir=cache_dir) as runner:
            first, _ = runner.run_sweep([dict(FAST_JOB)])
        with FleetRunner(workers=0, cache_dir=cache_dir) as runner:
            second, summary = runner.run_sweep([dict(FAST_JOB)])
        assert summary["cache_hits"] == 1
        assert second[0]["result"] == first[0]["result"]


class TestSweepHelper:
    def test_one_shot_sweep(self):
        records, summary = sweep([dict(FAST_JOB), dict(FAST_JOB)])
        assert summary["jobs"] == 2
        assert summary["executed"] == 1
        assert all(r["ok"] for r in records)
