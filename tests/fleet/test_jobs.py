"""Job model, workload resolution and content-addressed keys."""

import pytest

from repro.fleet import (
    Job,
    canonical_json,
    job_key,
    model_fingerprint,
    resolve_workload,
)


def _job(**overrides):
    base = {
        "model": "strongarm",
        "workload": {"kind": "kernel", "name": "stride8"},
        "config": {"perfect_memory": True},
        "seed": 1,
    }
    base.update(overrides)
    return Job.from_dict(base)


class TestJob:
    def test_round_trips_through_dict(self):
        job = _job()
        assert Job.from_dict(job.to_dict()) == job

    def test_isa_follows_model(self):
        assert _job().isa == "arm"
        assert _job(model="ppc750",
                    workload={"kind": "mediabench", "name": "gsm_dec"}).isa == "ppc"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet model"):
            _job(model="cray1")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job field"):
            Job.from_dict({**_job().to_dict(), "nice_level": 10})

    def test_workload_needs_kind(self):
        with pytest.raises(ValueError, match="kind"):
            _job(workload={"name": "stride8"})


class TestResolveWorkload:
    def test_named_workloads_resolve_to_source(self):
        text = resolve_workload({"kind": "kernel", "name": "stride8"}, "arm", 0)
        assert ".text" in text

    def test_mediabench_resolves_per_isa(self):
        spec = {"kind": "mediabench", "name": "gsm_dec"}
        assert resolve_workload(spec, "arm", 0) != resolve_workload(spec, "ppc", 0)

    def test_kernel_is_arm_only(self):
        with pytest.raises(ValueError, match="ARM-only"):
            resolve_workload({"kind": "kernel", "name": "stride8"}, "ppc", 0)

    def test_speclike_is_ppc_only(self):
        with pytest.raises(ValueError, match="PPC-only"):
            resolve_workload({"kind": "speclike", "name": "parser_loop"}, "arm", 0)

    def test_inline_source_passes_through(self):
        assert resolve_workload({"kind": "source", "text": "nop"}, "arm", 0) == "nop"

    def test_generated_threads_the_job_seed(self):
        spec = {"kind": "generated", "mix": {"alu": 4.0, "mem": 2.0}}
        one = resolve_workload(spec, "arm", 1)
        two = resolve_workload(spec, "arm", 2)
        again = resolve_workload(spec, "arm", 1)
        assert one == again
        assert one != two

    def test_generated_job_seed_beats_mix_seed(self):
        spec = {"kind": "generated", "mix": {"alu": 4.0, "seed": 999}}
        assert (resolve_workload(spec, "arm", 1)
                == resolve_workload({"kind": "generated", "mix": {"alu": 4.0}},
                                    "arm", 1))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            resolve_workload({"kind": "spec2047"}, "arm", 0)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown mediabench"):
            resolve_workload({"kind": "mediabench", "name": "quake"}, "arm", 0)


class TestJobKey:
    def test_stable_across_calls(self):
        assert job_key(_job()) == job_key(_job())

    def test_key_is_sha256_hex(self):
        key = job_key(_job())
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    @pytest.mark.parametrize("field, value", [
        ("model", "pipeline5"),
        ("workload", {"kind": "kernel", "name": "stride32"}),
        ("config", {"perfect_memory": False}),
        ("seed", 2),
        ("max_cycles", 99),
    ])
    def test_every_field_is_keyed(self, field, value):
        assert job_key(_job(**{field: value})) != job_key(_job())

    def test_config_key_order_is_canonical(self):
        a = _job(config={"perfect_memory": True, "fq_size": 6},
                 model="ppc750",
                 workload={"kind": "mediabench", "name": "gsm_dec"})
        b = _job(config={"fq_size": 6, "perfect_memory": True},
                 model="ppc750",
                 workload={"kind": "mediabench", "name": "gsm_dec"})
        assert job_key(a) == job_key(b)

    def test_workload_keyed_by_content_not_name(self):
        from repro.workloads import kernels

        named = _job()
        inline = _job(workload={"kind": "source",
                                "text": kernels.arm_source("stride8")})
        assert job_key(named) == job_key(inline)

    def test_explicit_source_matches_resolution(self):
        job = _job()
        source = resolve_workload(job.workload, job.isa, job.seed)
        assert job_key(job, source=source) == job_key(job)

    def test_non_json_config_rejected(self):
        with pytest.raises(TypeError):
            job_key(_job(config={"hook": object()}))


class TestModelFingerprint:
    def test_stable_and_hex(self):
        fp = model_fingerprint("strongarm")
        assert fp == model_fingerprint("strongarm")
        assert len(fp) == 64

    def test_distinct_per_model(self):
        fps = {model_fingerprint(m)
               for m in ("pipeline5", "strongarm", "vliw", "ppc750")}
        assert len(fps) == 4

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            model_fingerprint("alpha21264")


class TestCanonicalJson:
    def test_sorted_and_minimal(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_json({"x": {1, 2}})
