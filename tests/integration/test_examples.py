"""Integration: every shipped example runs to completion."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "adl_synthesis",
    "adl_diagnostics",
    "vliw_multithread",
    "formal_analysis",
]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip()  # every example reports something


def test_slow_examples_importable():
    """The two case-study sweeps are exercised by the benches; here we
    only check they import and expose main()."""
    for name in ("strongarm_mediabench", "ppc750_superscalar"):
        module = _load(name)
        assert callable(module.main)
