"""Test package."""
