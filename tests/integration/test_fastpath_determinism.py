"""Fast-path vs reference-loop determinism.

The director carries a cached rank order, per-step stamps and
version-skip marks across control steps; the kernels fuse the per-cycle
loop.  All of it is pure mechanism: these tests run whole workloads under
both the fast path and the original reference scheduling loop
(``director.reference = True``) and require bit-identical results —
cycle counts, instruction counts, transitions, exit codes and the full
rendered pipeview trace.
"""

import pytest

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.models.ppc750 import Ppc750Model
from repro.models.strongarm import StrongArmModel
from repro.reporting.pipeview import PipelineTracer
from repro.workloads import mediabench


def _run(model, reference):
    model.director.reference = reference
    tracer = PipelineTracer(model)
    stats = model.run(2_000_000)
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "transitions": stats.transitions,
        "exit_code": model.exit_code,
        "pipeview": tracer.render(count=200),
    }


@pytest.mark.parametrize("name", ["gsm_dec", "g721_enc"])
def test_strongarm_fast_path_matches_reference(name):
    source = mediabench.arm_source(name)
    fast = _run(StrongArmModel(asm_arm(source)), reference=False)
    reference = _run(StrongArmModel(asm_arm(source)), reference=True)
    assert fast == reference


@pytest.mark.parametrize("name", ["gsm_dec"])
def test_ppc750_fast_path_matches_reference(name):
    source = mediabench.ppc_source(name)
    fast = _run(Ppc750Model(asm_ppc(source)), reference=False)
    reference = _run(Ppc750Model(asm_ppc(source)), reference=True)
    assert fast == reference


@pytest.mark.parametrize("name", ["gsm_dec"])
def test_strongarm_fused_matches_unfused(name):
    # the fused per-state steppers are mechanism only: switching them
    # off must not change a single observable
    source = mediabench.arm_source(name)
    fused = _run(StrongArmModel(asm_arm(source), fused=True), reference=False)
    plain = _run(StrongArmModel(asm_arm(source), fused=False), reference=False)
    assert fused == plain


@pytest.mark.parametrize("name", ["gsm_dec"])
def test_ppc750_fused_matches_unfused(name):
    source = mediabench.ppc_source(name)
    fused = _run(Ppc750Model(asm_ppc(source), fused=True), reference=False)
    plain = _run(Ppc750Model(asm_ppc(source), fused=False), reference=False)
    assert fused == plain


def test_fused_steppers_actually_installed():
    model = StrongArmModel(asm_arm(mediabench.arm_source("gsm_dec")))
    assert model.spec.compile_stats.fused_states > 0
    plain = StrongArmModel(asm_arm(mediabench.arm_source("gsm_dec")),
                           fused=False)
    assert plain.spec.compile_stats.fused_states == 0


def test_reference_flag_actually_switches_loops():
    # guard against the reference loop silently becoming unreachable:
    # the fast path maintains a cached order, the reference loop does not
    model = StrongArmModel(asm_arm(mediabench.arm_source("gsm_dec")))
    model.director.reference = True
    model.run(2_000_000)
    assert model.director._order == []  # fast-path cache never populated
