"""Integration: the headline cross-validation runs of the paper.

These are the load-bearing reproduction checks:

* the OSM StrongARM model agrees cycle-for-cycle with the independently
  hand-coded simulator of the same micro-architecture, on all 40
  diagnostic loops and the MediaBench kernels;
* the OSM PPC-750 model agrees with the SystemC-style hardware-centric
  model within the paper's 3% on the full benchmark mix;
* every simulator agrees with the ISS functionally.
"""

import pytest

from repro.baselines.simplescalar import SimpleScalarArm
from repro.baselines.systemc_style import Ppc750SystemC
from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import ArmInterpreter, PpcInterpreter
from repro.models.ppc750 import Ppc750Model
from repro.models.strongarm import (
    StrongArmModel,
    default_dcache,
    default_dtlb,
    default_icache,
    default_itlb,
)
from repro.workloads import kernels, mediabench, speclike


#: a stratified sample of the 40 loops — the full sweep is the V2 bench
#: (benchmarks/bench_kernel_loops.py); tests keep one loop per family
KERNEL_SAMPLE = [
    "alu_dep4", "alu_ind4", "mul_byte4", "mull_large", "br_alternate",
    "loaduse0", "loaduse3", "stld_same", "flagdep0", "condexec3",
    "stride32", "mix_mul_mem", "chase",
]


@pytest.mark.parametrize("name", KERNEL_SAMPLE)
def test_kernel_loop_cycle_exact(name):
    source = kernels.arm_source(name)
    iss = ArmInterpreter(asm_arm(source))
    iss.run()
    osm = StrongArmModel(asm_arm(source), perfect_memory=True)
    osm.run()
    baseline = SimpleScalarArm(asm_arm(source))
    baseline.run()
    assert osm.exit_code == baseline.exit_code == iss.state.exit_code
    assert osm.retired == baseline.retired == iss.steps
    assert osm.cycles == baseline.cycles


@pytest.mark.parametrize("name", mediabench.MEDIABENCH_NAMES)
def test_mediabench_arm_cycle_exact_with_caches(name):
    source = mediabench.arm_source(name)
    osm = StrongArmModel(asm_arm(source))
    osm.run()
    baseline = SimpleScalarArm(
        asm_arm(source),
        icache=default_icache(), dcache=default_dcache(),
        itlb=default_itlb(), dtlb=default_dtlb(),
    )
    baseline.run()
    assert osm.cycles == baseline.cycles
    assert osm.exit_code == baseline.exit_code


#: one media kernel, one mul-heavy, one branchy, one load-chained — the
#: full mix is the V1 bench (benchmarks/bench_ppc750_validation.py)
PPC_SAMPLE = ["gsm_dec", "mpeg2_enc", "parser_loop", "pointer_chase"]


@pytest.mark.parametrize("name", PPC_SAMPLE)
def test_ppc750_within_three_percent(name):
    if name in mediabench.MEDIABENCH_NAMES:
        source = mediabench.ppc_source(name)
    else:
        source = speclike.ppc_source(name)
    iss = PpcInterpreter(asm_ppc(source))
    iss.run()
    osm = Ppc750Model(asm_ppc(source))
    osm.run()
    systemc = Ppc750SystemC(asm_ppc(source))
    systemc.run()
    assert osm.exit_code == systemc.exit_code == iss.state.exit_code
    assert osm.kernel.stats.instructions == systemc.instructions == iss.steps
    delta = abs(osm.cycles - systemc.cycles) / systemc.cycles
    assert delta <= 0.03, f"{name}: {osm.cycles} vs {systemc.cycles}"
