"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def arm_file(tmp_path):
    source = tmp_path / "prog.s"
    source.write_text("""
    .text
_start:
    mov r1, #6
    mul r0, r1, r1
    swi #0
""")
    return str(source)


@pytest.fixture()
def ppc_file(tmp_path):
    source = tmp_path / "prog.s"
    source.write_text("""
    .text
_start:
    li r4, 6
    mullw r3, r4, r4
    li r0, 0
    sc
""")
    return str(source)


class TestRun:
    def test_run_strongarm(self, arm_file, capsys):
        assert main(["run", "--model", "strongarm", arm_file]) == 0
        out = capsys.readouterr().out
        assert "exit=36" in out
        assert "cycles=" in out

    def test_run_iss(self, arm_file, capsys):
        assert main(["run", "--model", "iss", arm_file]) == 0
        assert "exit=36" in capsys.readouterr().out

    def test_run_ppc750_with_trace(self, ppc_file, capsys):
        assert main(["run", "--model", "ppc750", ppc_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "exit=36" in out
        assert "mullw" in out  # trace rows present

    def test_isa_mismatch_rejected(self, arm_file):
        with pytest.raises(SystemExit):
            main(["run", "--model", "ppc750", "--isa", "arm", arm_file])


class TestAsm:
    def test_listing(self, arm_file, capsys):
        assert main(["asm", "--isa", "arm", arm_file]) == 0
        out = capsys.readouterr().out
        assert "mov r1, #6" in out
        assert "entry: 0x8000" in out

    def test_ppc_listing(self, ppc_file, capsys):
        assert main(["asm", "--isa", "ppc", ppc_file]) == 0
        assert "mullw" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_umbrella(self, capsys):
        assert main(["analyze", "pipeline5"]) == 0
        out = capsys.readouterr().out
        assert "analyze: all tools clean" in out

    def test_analyze_json(self, capsys):
        import json

        assert main(["analyze", "pipeline5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "analyze"
        assert payload["ok"] is True
        assert set(payload["models"]["pipeline5"]) == {
            "lint", "check", "effects", "audit", "certify"}
        assert "arm" in payload["isas"]

    def test_certify_cli(self, capsys):
        assert main(["certify", "pipeline5"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out


class TestWorkload:
    def test_emits_source(self, capsys):
        assert main(["workload", "gsm_dec", "--isa", "ppc"]) == 0
        assert "_start:" in capsys.readouterr().out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["workload", "doom3"])
