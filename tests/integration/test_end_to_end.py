"""Integration: whole-stack flows through the public API."""


from repro.adl import STRONGARM_ADL, synthesize
from repro.core import SimulationKernel
from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import ArmInterpreter
from repro.models.ppc750 import Ppc750Model
from repro.models.strongarm import StrongArmModel

FIB_ARM = """
    ; recursive-free fibonacci with memory traffic and IO
    .text
_start:
    li   r8, table
    mov  r1, #0
    mov  r2, #1
    str  r1, [r8]
    str  r2, [r8, #4]
    mov  r3, #2
fib:
    sub  r4, r3, #1
    ldr  r5, [r8, r4, lsl #2]
    sub  r4, r3, #2
    ldr  r6, [r8, r4, lsl #2]
    add  r7, r5, r6
    str  r7, [r8, r3, lsl #2]
    add  r3, r3, #1
    cmp  r3, #13
    blt  fib
    ldr  r0, [r8, #48]      ; fib(12) = 144
    mov  r5, r0
    mov  r0, #70            ; 'F'
    swi  #1
    mov  r0, r5
    swi  #0
    .data
table: .space 64
"""

FIB_PPC = """
    .text
_start:
    li32  r8, table
    li    r4, 0
    li    r5, 1
    stw   r4, 0(r8)
    stw   r5, 4(r8)
    li    r6, 2
fib:
    addi  r7, r6, -1
    slwi  r7, r7, 2
    lwzx  r9, r8, r7
    addi  r7, r6, -2
    slwi  r7, r7, 2
    lwzx  r10, r8, r7
    add   r11, r9, r10
    slwi  r7, r6, 2
    stwx  r11, r8, r7
    addi  r6, r6, 1
    cmpwi r6, 13
    blt   fib
    lwz   r3, 48(r8)
    li    r0, 0
    sc
    .data
table: .space 64
"""


class TestWholeStack:
    def test_arm_program_through_every_simulator(self):
        iss = ArmInterpreter(asm_arm(FIB_ARM))
        iss.run()
        assert iss.state.exit_code == 144
        assert iss.syscalls.output_text == "F"

        model = StrongArmModel(asm_arm(FIB_ARM))
        model.run()
        assert model.exit_code == 144
        assert model.output_text == "F"

        synthesised = synthesize(STRONGARM_ADL, asm_arm(FIB_ARM))
        synthesised.run()
        assert synthesised.exit_code == 144

    def test_ppc_program_through_the_ooo_model(self):
        model = Ppc750Model(asm_ppc(FIB_PPC))
        stats = model.run()
        assert model.exit_code == 144
        assert stats.ipc > 0.5  # superscalar on a dependence-heavy loop

    def test_strongarm_under_the_de_kernel(self):
        """The same model runs identically under the Fig.-4 DE kernel."""
        cycle_driven = StrongArmModel(asm_arm(FIB_ARM), perfect_memory=True)
        cycle_driven.run()

        de_model = StrongArmModel(asm_arm(FIB_ARM), perfect_memory=True)
        kernel = SimulationKernel(de_model.director, de_model.kernel.modules)
        kernel.stop_condition = de_model.kernel.stop_condition
        de_model.kernel = kernel
        de_model.run()
        assert de_model.cycles == cycle_driven.cycles
        assert de_model.exit_code == 144

    def test_stdin_flows_through(self):
        echo = """
    .text
_start:
    swi  #3          ; getc
    mov  r5, r0
    swi  #1          ; putc
    mov  r0, r5
    swi  #0
"""
        model = StrongArmModel(asm_arm(echo), perfect_memory=True, stdin=b"Q")
        model.run()
        assert model.exit_code == ord("Q")
        assert model.output_text == "Q"
