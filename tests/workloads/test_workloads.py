"""Tests for the workload generators."""

import pytest

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import ArmInterpreter, PpcInterpreter
from repro.workloads import kernels, mediabench, rng, speclike


class TestRng:
    def test_deterministic(self):
        assert rng.lcg_words(seed=7, count=10) == rng.lcg_words(seed=7, count=10)

    def test_range_respected(self):
        values = rng.lcg_words(seed=3, count=200, lo=-5, hi=5)
        assert all(-5 <= v <= 5 for v in values)
        assert len(set(values)) > 3  # actually varies

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            rng.lcg_words(seed=1, count=1, lo=5, hi=2)

    def test_narrow_spans_stay_bit_identical(self):
        """Spans ≤ 2**31 must keep the historical single-draw stream."""
        expected = []
        stream = rng.lcg_stream(11)
        for _ in range(64):
            expected.append(next(stream) % 1000)
        assert rng.lcg_words(seed=11, count=64, lo=0, hi=999) == expected
        # the widest single-draw span, exactly 2**31
        stream = rng.lcg_stream(11)
        expected = [next(stream) for _ in range(64)]
        assert rng.lcg_words(seed=11, count=64, lo=0,
                             hi=(1 << 31) - 1) == expected

    def test_full_32bit_range_reaches_top_half(self):
        """Regression: values ≥ 2**31 were unreachable (the LCG modulus
        is 2**31, so one raw draw can never set a 32-bit word's top
        bit) and the bottom half was modulo-biased."""
        values = rng.lcg_words(seed=5, count=512)  # default [0, 2**32-1]
        assert all(0 <= v <= 0xFFFFFFFF for v in values)
        top = sum(1 for v in values if v >> 31)
        # fair-coin top bit: 512 draws land well inside [150, 362]
        assert 150 < top < 362

    def test_wide_span_bit_distribution(self):
        """Every bit of a full-range word should flip roughly half the
        time — the old single-draw path pinned bit 31 to zero."""
        values = rng.lcg_words(seed=123, count=1024)
        for bit in range(32):
            ones = sum(1 for v in values if (v >> bit) & 1)
            assert 300 < ones < 724, f"bit {bit} stuck ({ones}/1024 set)"

    def test_wide_span_respects_bounds(self):
        lo, hi = 10, 10 + (1 << 31)  # span 2**31 + 1: needs two draws
        values = rng.lcg_words(seed=9, count=256, lo=lo, hi=hi)
        assert all(lo <= v <= hi for v in values)
        assert any(v - lo >= (1 << 30) for v in values)


class TestKernelLoops:
    def test_exactly_forty(self):
        assert len(kernels.KERNEL_NAMES) == 40
        assert len(set(kernels.KERNEL_NAMES)) == 40

    @pytest.mark.parametrize("name", kernels.KERNEL_NAMES)
    def test_each_loop_assembles_and_terminates(self, name):
        interpreter = ArmInterpreter(asm_arm(kernels.arm_source(name)))
        interpreter.run(500_000)
        assert interpreter.state.halted

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            kernels.arm_source("nonexistent")

    def test_all_sources_distinct(self):
        sources = kernels.all_arm_sources()
        assert len(set(sources.values())) == 40


class TestMediabench:
    @pytest.mark.parametrize("name", mediabench.MEDIABENCH_NAMES)
    def test_arm_and_ppc_variants_run(self, name):
        arm = ArmInterpreter(asm_arm(mediabench.arm_source(name)))
        arm.run(2_000_000)
        ppc = PpcInterpreter(asm_ppc(mediabench.ppc_source(name)))
        ppc.run(2_000_000)
        assert arm.state.halted and ppc.state.halted

    def test_scale_grows_work(self):
        small = ArmInterpreter(asm_arm(mediabench.arm_source("gsm_dec", scale=1)))
        small.run(5_000_000)
        large = ArmInterpreter(asm_arm(mediabench.arm_source("gsm_dec", scale=2)))
        large.run(5_000_000)
        assert large.steps > small.steps * 1.5

    def test_checksums_are_deterministic(self):
        first = ArmInterpreter(asm_arm(mediabench.arm_source("mpeg2_enc")))
        second = ArmInterpreter(asm_arm(mediabench.arm_source("mpeg2_enc")))
        assert first.run() == second.run()

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            mediabench.arm_source("quake")
        with pytest.raises(KeyError):
            mediabench.ppc_source("quake")


class TestSpeclike:
    @pytest.mark.parametrize("name", speclike.SPECLIKE_NAMES)
    def test_runs_to_completion(self, name):
        interpreter = PpcInterpreter(asm_ppc(speclike.ppc_source(name)))
        interpreter.run(2_000_000)
        assert interpreter.state.halted

    def test_branchier_than_mediabench(self):
        """The SPEC-like mix plays the 'harder control flow' role."""
        from repro.models.ppc750 import Ppc750Model

        parser = Ppc750Model(asm_ppc(speclike.ppc_source("parser_loop")))
        parser.run()
        gsm = Ppc750Model(asm_ppc(mediabench.ppc_source("gsm_dec")))
        gsm.run()
        parser_rate = parser.predictor.mispredictions / parser.kernel.stats.instructions
        gsm_rate = gsm.predictor.mispredictions / gsm.kernel.stats.instructions
        assert parser_rate > gsm_rate
