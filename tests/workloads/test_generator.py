"""Tests for the parameterised workload generator."""

import pytest

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.iss import ArmInterpreter, PpcInterpreter
from repro.workloads.generator import Mix, arm_source, ppc_source


class TestMixValidation:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Mix(alu=-1).validate()

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            Mix(alu=0, mem=0, mul=0).validate()

    def test_bad_block_length_rejected(self):
        with pytest.raises(ValueError):
            Mix(block_length=0).validate()


class TestGeneration:
    def test_both_targets_assemble_and_terminate(self):
        mix = Mix(alu=5, mem=3, mul=1, iterations=8)
        arm = ArmInterpreter(asm_arm(arm_source(mix)))
        arm.run(500_000)
        ppc = PpcInterpreter(asm_ppc(ppc_source(mix)))
        ppc.run(500_000)
        assert arm.state.halted and ppc.state.halted

    def test_deterministic_per_seed(self):
        mix = Mix(seed=77)
        assert arm_source(mix) == arm_source(Mix(seed=77))
        assert arm_source(mix) != arm_source(Mix(seed=78))

    def test_mix_weights_shape_the_program(self):
        memory_heavy = arm_source(Mix(alu=0.5, mem=8, mul=0, block_length=40))
        alu_heavy = arm_source(Mix(alu=8, mem=0.5, mul=0, block_length=40))
        assert memory_heavy.count("ldr") + memory_heavy.count("str") > \
            alu_heavy.count("ldr") + alu_heavy.count("str")

    def test_mul_heavy_mix_runs_slower_on_the_model(self):
        from repro.models.strongarm import StrongArmModel

        alu = StrongArmModel(
            asm_arm(arm_source(Mix(alu=10, mem=0, mul=0.0001, iterations=16))),
            perfect_memory=True,
        )
        alu.run()
        mul = StrongArmModel(
            asm_arm(arm_source(Mix(alu=0.0001, mem=0, mul=10, iterations=16,
                                   seed=Mix().seed))),
            perfect_memory=True,
        )
        mul.run()
        assert mul.cycles > alu.cycles

    def test_footprint_controls_cache_pressure(self):
        from repro.memory import Cache
        from repro.models.strongarm import StrongArmModel

        def miss_rate(footprint):
            mix = Mix(alu=1, mem=8, mul=0, footprint_words=footprint,
                      iterations=12, block_length=24)
            dcache = Cache("d", size=512, line_size=32, assoc=2, miss_penalty=20)
            model = StrongArmModel(asm_arm(arm_source(mix)), dcache=dcache,
                                   icache=None, itlb=None, dtlb=None,
                                   perfect_memory=False)
            model.run()
            return 1.0 - dcache.stats.hit_rate

        assert miss_rate(1024) > miss_rate(16)
