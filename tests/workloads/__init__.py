"""Test package."""
