"""Tests for the SystemC-style hardware-centric PPC-750 baseline."""

import pytest

from repro.baselines.systemc_style import Ppc750SystemC
from repro.isa.ppc import assemble
from repro.iss import PpcInterpreter
from repro.models.ppc750 import Ppc750Model

from ..conftest import ppc_program


def run_pair(body: str, data: str = "", **kwargs):
    kwargs.setdefault("perfect_memory", True)
    source = ppc_program(body, data)
    osm = Ppc750Model(assemble(source), **kwargs)
    osm.run()
    systemc = Ppc750SystemC(assemble(source), **kwargs)
    systemc.run()
    return osm, systemc


class TestStructure:
    def test_twenty_modules_like_the_paper(self):
        systemc = Ppc750SystemC(assemble(ppc_program("    li r3, 0")))
        assert len(systemc.sim.modules) == 20

    def test_port_based_communication_only(self):
        systemc = Ppc750SystemC(assemble(ppc_program("    li r3, 0")))
        summary = systemc.wiring_summary()
        assert "modules" in summary and "wires" in summary

    def test_delta_cycles_iterate_per_clock(self):
        _, systemc = run_pair("    li r3, 1\n    add r4, r3, r3")
        assert systemc.sim.delta_cycles_run / systemc.cycles >= 2


class TestCrossValidation:
    @pytest.mark.parametrize("body", [
        "    li r3, 1\n    add r4, r3, r3\n    add r3, r4, r4",
        """    li   r4, 0
lp:
    addi r4, r4, 1
    cmpwi r4, 9
    blt  lp
    mr   r3, r4""",
        """    li    r4, 60
    li    r5, 5
    divw  r6, r4, r5
    mullw r7, r6, r5
    mr    r3, r7""",
    ])
    def test_functional_agreement(self, body):
        osm, systemc = run_pair(body)
        assert osm.exit_code == systemc.exit_code
        assert osm.kernel.stats.instructions == systemc.instructions

    def test_timing_within_three_percent(self):
        from repro.workloads import mediabench

        source = mediabench.ppc_source("gsm_dec")
        osm = Ppc750Model(assemble(source))
        osm.run()
        systemc = Ppc750SystemC(assemble(source))
        systemc.run()
        delta = abs(osm.cycles - systemc.cycles) / systemc.cycles
        assert delta <= 0.03  # the paper's validation bound

    def test_iss_equivalence(self):
        source = ppc_program("""
    li    r4, 0
    li    r6, 0
lp:
    addi  r4, r4, 1
    andi. r5, r4, 1
    beq   even
    addi  r6, r6, 2
    b     nxt
even:
    addi  r6, r6, 5
nxt:
    cmpwi r4, 10
    blt   lp
    mr    r3, r6
""")
        iss = PpcInterpreter(assemble(source))
        iss.run()
        systemc = Ppc750SystemC(assemble(source), perfect_memory=True)
        systemc.run()
        assert systemc.exit_code == iss.state.exit_code
        assert systemc.instructions == iss.steps

    def test_budget_guard(self):
        systemc = Ppc750SystemC(assemble("""
    .text
_start:
    b _start
"""))
        with pytest.raises(RuntimeError):
            systemc.run(200)
