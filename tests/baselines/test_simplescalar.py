"""Tests for the SimpleScalar-style baseline and the iPAQ reference."""

import pytest

from repro.baselines.reference import IpaqReference
from repro.baselines.simplescalar import SimpleScalarArm
from repro.isa.arm import assemble
from repro.iss import ArmInterpreter
from repro.models.strongarm import (
    StrongArmModel,
    default_dcache,
    default_dtlb,
    default_icache,
    default_itlb,
)

from ..conftest import arm_program


def _pair(body: str, data: str = ""):
    source = arm_program(body, data)
    osm = StrongArmModel(assemble(source), perfect_memory=True)
    osm.run()
    base = SimpleScalarArm(assemble(source))
    base.run()
    return osm, base


class TestCrossValidation:
    @pytest.mark.parametrize("body", [
        "    mov r1, #1\n    add r2, r1, #2",
        "    mov r1, #5\n    mul r2, r1, r1\n    add r3, r2, #1",
        """    mov r1, #0
lp:
    add r1, r1, #1
    cmp r1, #6
    bne lp""",
    ])
    def test_cycle_exact_on_fragments(self, body):
        osm, base = _pair(body)
        assert osm.cycles == base.cycles
        assert osm.exit_code == base.exit_code

    def test_cycle_exact_with_caches(self):
        from repro.workloads import mediabench

        source = mediabench.arm_source("g721_dec")
        osm = StrongArmModel(assemble(source))
        osm.run()
        base = SimpleScalarArm(
            assemble(source),
            icache=default_icache(), dcache=default_dcache(),
            itlb=default_itlb(), dtlb=default_dtlb(),
        )
        base.run()
        assert osm.cycles == base.cycles

    def test_functional_equivalence_with_iss(self):
        source = arm_program("""
    li  r1, buf
    mov r2, #0
    mov r3, #0
lp:
    str r3, [r1, r3, lsl #2]
    add r2, r2, r3
    add r3, r3, #1
    cmp r3, #8
    blt lp
    mov r0, r2
""", data="buf: .space 64")
        iss = ArmInterpreter(assemble(source))
        iss.run()
        sim = SimpleScalarArm(assemble(source))
        sim.run()
        assert sim.exit_code == iss.state.exit_code
        assert sim.retired == iss.steps

    def test_budget_guard(self):
        source = """
    .text
_start:
    b _start
"""
        sim = SimpleScalarArm(assemble(source))
        with pytest.raises(RuntimeError):
            sim.run(100)


class TestIpaqReference:
    def test_reference_is_slower_than_idealised_model(self):
        from repro.workloads import mediabench

        source = mediabench.arm_source("gsm_dec")
        model = StrongArmModel(assemble(source))
        model.run()
        reference = IpaqReference(assemble(source))
        reference.run()
        assert reference.cycles > model.cycles  # bus/DRAM/syscall overheads
        diff = abs(model.cycles - reference.cycles) / reference.cycles
        assert diff < 0.08  # but the difference is Table-1 small

    def test_functional_equivalence(self):
        from repro.workloads import mediabench

        source = mediabench.arm_source("mpeg2_enc")
        iss = ArmInterpreter(assemble(source))
        iss.run()
        reference = IpaqReference(assemble(source))
        reference.run()
        assert reference.exit_code == iss.state.exit_code

    def test_time_utility_quantises(self):
        source = arm_program("    mov r0, #0")
        reference = IpaqReference(assemble(source))
        reference.run()
        measured = reference.measured_seconds()
        assert measured >= 0.01  # one tick minimum
        assert measured % 0.01 == pytest.approx(0, abs=1e-9)

    def test_bus_contention_recorded(self):
        from repro.workloads import kernels

        reference = IpaqReference(assemble(kernels.arm_source("stride32")))
        reference.run()
        assert reference.bus.stats.transactions > 0
