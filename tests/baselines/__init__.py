"""Test package."""
