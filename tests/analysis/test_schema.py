"""Cross-tool JSON schema stability.

All six analysis front ends — osmlint (``repro lint``), osmcheck
(``repro check``), isaaudit (``repro audit``), effectcheck
(``repro effects``), transcheck (``repro certify``) and adlcheck
(``repro adlcheck``) — emit the
shared diagnostics schema of :mod:`repro.analysis.diagnostics`.  These tests pin the contract
downstream consumers (CI artifact diffing, dashboards) dispatch on:
a ``tool`` name, the ``schema_version``, and rule codes of the shape
``ABC123``.
"""

import re

import pytest

from repro.analysis.adl import adlcheck_source, description_source
from repro.analysis.audit import audit_target, build_target
from repro.analysis.certify import certify_spec
from repro.analysis.check import check_model
from repro.analysis.diagnostics import SCHEMA_VERSION
from repro.analysis.effects import effects_spec
from repro.analysis.lint import lint_spec
from repro.analysis.registry import build_spec

RULE_CODE = re.compile(r"^[A-Z]{3}\d{3}$")

#: finding keys shared by every tool (osmcheck findings add "trace")
DIAGNOSTIC_KEYS = {
    "code", "rule", "severity", "spec", "state", "edge", "message",
    "suppressed",
}


def _lint_report():
    return "lint", lint_spec(build_spec("pipeline5")).to_dict()


def _check_report():
    return "check", check_model("pipeline5", n_osms=2).to_dict()


def _audit_report():
    return "audit", audit_target(build_target("arm"), codes=["ISA003"]).to_dict()


def _effects_report():
    return "effects", effects_spec(build_spec("pipeline5")).to_dict()


def _certify_report():
    return "certify", certify_spec(build_spec("pipeline5")).to_dict()


def _adlcheck_report():
    # source-level rules only: the ADL010 closure re-runs three other
    # tools, which this schema test does not need
    return "adlcheck", adlcheck_source(
        description_source("adl-pipeline5"), unit="adl-pipeline5",
        synth_closure=False,
    ).to_dict()


REPORTS = {
    "lint": _lint_report,
    "check": _check_report,
    "audit": _audit_report,
    "effects": _effects_report,
    "certify": _certify_report,
    "adlcheck": _adlcheck_report,
}


@pytest.fixture(scope="module")
def payloads():
    return {name: build() for name, build in REPORTS.items()}


@pytest.mark.parametrize("tool", sorted(REPORTS))
class TestSchemaStability:
    def test_tool_name_matches(self, payloads, tool):
        expected, payload = payloads[tool]
        assert payload["tool"] == expected == tool

    def test_schema_version_is_current(self, payloads, tool):
        _, payload = payloads[tool]
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_core_envelope_keys(self, payloads, tool):
        _, payload = payloads[tool]
        assert isinstance(payload["spec"], str)
        assert isinstance(payload["ok"], bool)

    def test_rule_codes_are_well_formed(self, payloads, tool):
        _, payload = payloads[tool]
        findings = payload.get("diagnostics", payload.get("findings", []))
        rules = payload.get("passes", payload.get("properties", []))
        for code in rules:
            assert RULE_CODE.match(code), code
        for finding in findings:
            assert RULE_CODE.match(finding["code"]), finding["code"]
            assert DIAGNOSTIC_KEYS <= set(finding)
            assert finding["severity"] in {"error", "warning", "info"}


class TestRulePrefixes:
    """Each tool owns one rule-code prefix; overlap would make the
    merged CI artifact ambiguous."""

    def test_prefixes_are_disjoint(self, payloads):
        prefixes = {}
        for tool, (_, payload) in payloads.items():
            rules = payload.get("passes", payload.get("properties", []))
            for code in rules:
                prefixes.setdefault(code[:3], set()).add(tool)
        for prefix, owners in prefixes.items():
            assert len(owners) == 1, (prefix, owners)

    def test_expected_prefix_per_tool(self, payloads):
        expected = {"lint": "OSM", "check": "CHK", "audit": "ISA",
                    "effects": "EFF", "certify": "TRV", "adlcheck": "ADL"}
        for tool, prefix in expected.items():
            _, payload = payloads[tool]
            rules = payload.get("passes", payload.get("properties", []))
            assert rules, tool
            assert all(code.startswith(prefix) for code in rules), tool
