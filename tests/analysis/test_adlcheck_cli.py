"""Tests for the ``repro adlcheck`` CLI subcommand: name/file resolution,
exit codes, JSON schema, rule filtering, and the analyze umbrella's
sixth-tool section."""

import json

import pytest

from repro.adl.synth import PIPELINE5_ADL
from repro.cli import main

BROKEN = PIPELINE5_ADL.replace("allocate m_d;", "allocate m_dd;")


@pytest.fixture()
def broken_file(tmp_path):
    path = tmp_path / "broken.adl"
    path.write_text(BROKEN)
    return str(path)


class TestAdlcheckCli:
    def test_clean_descriptions_exit_zero(self, capsys):
        assert main(["adlcheck", "all"]) == 0
        out = capsys.readouterr().out
        assert "adl-pipeline5: 0 error(s)" in out
        assert "adl-strongarm: 0 error(s)" in out

    def test_broken_file_exits_nonzero_with_span(self, broken_file, capsys):
        assert main(["adlcheck", broken_file, "--no-closure"]) == 1
        out = capsys.readouterr().out
        assert "ADL001" in out
        # rendered provenance: " (at <file>:21)"
        assert f"(at {broken_file}:21)" in out

    def test_unknown_subject_rejected(self):
        with pytest.raises(SystemExit, match="unknown description"):
            main(["adlcheck", "no-such-thing"])

    def test_json_schema(self, broken_file, capsys):
        assert main(["adlcheck", "adl-pipeline5", broken_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "adlcheck"
        assert payload["ok"] is False
        assert set(payload["descriptions"]) == {"adl-pipeline5", broken_file}
        assert payload["descriptions"]["adl-pipeline5"]["ok"] is True
        broken = payload["descriptions"][broken_file]
        assert broken["ok"] is False
        finding = next(d for d in broken["diagnostics"]
                       if d["code"] == "ADL001")
        assert finding["source_span"] == {"unit": broken_file, "line": 21}

    def test_rules_filter(self, broken_file, capsys):
        # ADL002 alone does not see the undeclared-manager defect
        assert main(["adlcheck", broken_file, "--rules", "ADL002"]) == 0
        with pytest.raises(SystemExit, match="unknown adlcheck rule"):
            main(["adlcheck", broken_file, "--rules", "ADL999"])

    def test_no_closure_skips_adl010(self, capsys):
        assert main(["adlcheck", "adl-pipeline5", "--no-closure"]) == 0
        out = capsys.readouterr().out
        assert "(9 passes)" in out


class TestAnalyzeUmbrella:
    def test_adl_backed_specs_get_sixth_tool(self, capsys):
        assert main(["analyze", "adl-pipeline5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        section = payload["models"]["adl-pipeline5"]
        assert set(section) == {
            "lint", "check", "effects", "audit", "certify", "adlcheck",
        }
        assert section["adlcheck"]["tool"] == "adlcheck"
        assert section["adlcheck"]["ok"] is True

    def test_handwritten_specs_have_no_adlcheck_section(self, capsys):
        assert main(["analyze", "pipeline5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "adlcheck" not in payload["models"]["pipeline5"]
