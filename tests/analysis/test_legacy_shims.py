"""The legacy ``analysis.deadlock`` / ``analysis.reachability``
deprecation shims are gone: :mod:`repro.analysis.lint.graph` is the
single owner of the spec-graph analyses.

Coverage here pins two things: the old import paths are really removed
(so nothing silently resurrects them), and the graph analyses still
agree with the osmcheck model checker's ground truth on every bundled
spec — the cross-validation the shim tests used to carry.
"""

import pytest

from repro.analysis.check import check_model
from repro.analysis.lint.graph import analyze_deadlock, analyze_reachability
from repro.analysis.registry import available_specs, build_spec


class TestShimRemoval:
    def test_deadlock_shim_removed(self):
        with pytest.raises(ImportError):
            import repro.analysis.deadlock  # noqa: F401

    def test_reachability_shim_removed(self):
        with pytest.raises(ImportError):
            import repro.analysis.reachability  # noqa: F401

    def test_package_no_longer_exposes_shim_modules(self):
        import repro.analysis as analysis

        assert "deadlock" not in analysis.__all__
        assert "reachability" not in analysis.__all__

    def test_lint_graph_owns_the_analyses(self):
        import repro.analysis as analysis

        assert analysis.analyze_deadlock is analyze_deadlock
        assert analysis.analyze_reachability is analyze_reachability


@pytest.mark.parametrize("name", available_specs())
def test_graph_analyses_agree_with_osmcheck(name):
    """The static graph analyses and the explicit-state checker must
    tell one story on the bundled specs: every bundled model is
    reachable/live/deadlock-free by both accounts."""
    spec = build_spec(name)
    assert analyze_reachability(spec).clean
    assert analyze_deadlock(spec).deadlock_free
    verdict = check_model(name, n_osms=2)
    assert verdict.ok, verdict.render_text()
