"""The legacy ``analysis.deadlock`` / ``analysis.reachability`` modules
are deprecation shims over :mod:`repro.analysis.lint.graph`.

Coverage here pins three things: the shims warn, the shims return the
*same* results as the lint-stack owners, and the graph analyses agree
with the osmcheck model checker's ground truth on every bundled spec.
"""

import warnings

import pytest

from repro.analysis.check import check_model
from repro.analysis.deadlock import analyze as legacy_deadlock
from repro.analysis.lint.graph import (
    DeadlockReport,
    ReachabilityReport,
    analyze_deadlock,
    analyze_reachability,
)
from repro.analysis.reachability import analyze as legacy_reachability
from repro.analysis.registry import available_specs, build_spec


@pytest.mark.parametrize("name", available_specs())
class TestShimAgreement:
    def test_reachability_shim_matches_lint_graph(self, name):
        spec = build_spec(name)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = legacy_reachability(spec)
        fresh = analyze_reachability(spec)
        assert isinstance(legacy, ReachabilityReport)
        assert legacy.clean == fresh.clean
        assert set(legacy.unreachable) == set(fresh.unreachable)
        assert set(legacy.non_returning) == set(fresh.non_returning)

    def test_deadlock_shim_matches_lint_graph(self, name):
        spec = build_spec(name)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = legacy_deadlock(spec)
        fresh = analyze_deadlock(spec)
        assert isinstance(legacy, DeadlockReport)
        assert legacy.deadlock_free == fresh.deadlock_free
        assert set(legacy.dependencies) == set(fresh.dependencies)
        assert legacy.cycles == fresh.cycles


class TestShimDeprecation:
    def test_reachability_shim_warns(self):
        spec = build_spec("pipeline5")
        with pytest.warns(DeprecationWarning, match="analyze_reachability"):
            legacy_reachability(spec)

    def test_deadlock_shim_warns(self):
        spec = build_spec("pipeline5")
        with pytest.warns(DeprecationWarning, match="analyze_deadlock"):
            legacy_deadlock(spec)

    def test_package_still_exposes_shim_modules(self):
        """Back-compat import paths keep working (one release of grace)."""
        import repro.analysis as analysis

        assert analysis.deadlock.analyze is legacy_deadlock
        assert analysis.reachability.analyze is legacy_reachability


@pytest.mark.parametrize("name", available_specs())
def test_graph_analyses_agree_with_osmcheck(name):
    """The static graph analyses and the explicit-state checker must
    tell one story on the bundled specs: every bundled model is
    reachable/live/deadlock-free by both accounts."""
    spec = build_spec(name)
    assert analyze_reachability(spec).clean
    assert analyze_deadlock(spec).deadlock_free
    verdict = check_model(name, n_osms=2)
    assert verdict.ok, verdict.render_text()
