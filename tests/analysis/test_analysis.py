"""Tests for the Section-6 analysis passes."""

import pytest

from repro.analysis import export_asm, render_asm, reservation_table
from repro.analysis.lint.graph import analyze_deadlock, analyze_reachability
from repro.core import (
    ALWAYS,
    Allocate,
    Condition,
    MachineSpec,
    Release,
    SlotManager,
)
from repro.isa.arm import assemble
from repro.models.pipeline5 import Pipeline5Model
from repro.models.strongarm import StrongArmModel

from ..conftest import arm_program


@pytest.fixture()
def pipeline5_spec():
    model = Pipeline5Model(assemble(arm_program("    nop")))
    return model.spec


class TestAsmExport:
    def test_one_rule_per_edge(self, pipeline5_spec):
        rules = export_asm(pipeline5_spec)
        assert len(rules) == len(pipeline5_spec.edges)

    def test_rules_carry_guards_and_updates(self, pipeline5_spec):
        rules = {rule.name: rule for rule in export_asm(pipeline5_spec)}
        issue = rules["issue"]
        assert any("m_e" in guard for guard in issue.guards)
        assert any("m_r" in guard for guard in issue.guards)
        assert any("m_d" in update for update in issue.updates)

    def test_reset_rules_have_discard_updates(self, pipeline5_spec):
        rules = [rule for rule in export_asm(pipeline5_spec) if rule.name.startswith("reset")]
        assert rules
        for rule in rules:
            assert any("free" in update for update in rule.updates)

    def test_render_contains_all_states(self, pipeline5_spec):
        text = render_asm(pipeline5_spec)
        for state in "IFDEBW":
            assert state in text
        assert "rule fetch" in text


class TestReachability:
    def test_clean_model(self, pipeline5_spec):
        report = analyze_reachability(pipeline5_spec)
        assert report.clean
        assert report.reachable == set("IFDEBW")

    def test_detects_trap_state(self):
        spec = MachineSpec("trap")
        spec.state("I", initial=True)
        spec.state("Trap")
        spec.edge("I", "Trap", ALWAYS)
        report = analyze_reachability(spec)
        assert "Trap" in report.trapping
        assert "Trap" in report.non_returning
        assert not report.clean

    def test_detects_unreachable(self):
        spec = MachineSpec("u")
        spec.state("I", initial=True)
        spec.state("A")
        spec.state("Island")
        spec.edge("I", "A", ALWAYS)
        spec.edge("A", "I", ALWAYS)
        spec.edge("Island", "I", ALWAYS)
        report = analyze_reachability(spec)
        assert report.unreachable == {"Island"}
        assert report.dead_edges == ["Island->I"]


class TestDeadlockAnalysis:
    def test_linear_pipeline_is_deadlock_free(self, pipeline5_spec):
        report = analyze_deadlock(pipeline5_spec)
        assert report.deadlock_free
        assert ("m_f", "m_d") in report.dependencies

    def test_strongarm_is_deadlock_free(self):
        model = StrongArmModel(assemble(arm_program("    nop")), perfect_memory=True)
        assert analyze_deadlock(model.spec).deadlock_free

    def test_cyclic_pipeline_detected(self):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("cyclic")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "Q", Condition([Allocate(b)]))
        spec.edge("Q", "P", Condition([Allocate(a, slot="A2"), Release("A")]))
        spec.edge("Q", "I", Condition([Release("A"), Release("B")]))
        report = analyze_deadlock(spec)
        assert not report.deadlock_free
        assert any(set(cycle) >= {"A", "B"} for cycle in report.cycles)


class TestCanonicalPath:
    def test_pipeline5_canonical_path_is_the_forward_flow(self, pipeline5_spec):
        from repro.analysis import canonical_path

        path = canonical_path(pipeline5_spec)
        # Regression pin: the lowest-priority (normal-flow) edge is taken
        # at every step and the reset edges back to I are never chosen.
        assert [edge.label for edge in path] == [
            "fetch", "decode", "issue", "mem", "writeback", "retire",
        ]
        assert path[-1].dst.is_initial

    def test_missing_initial_state_rejected(self):
        from repro.analysis import canonical_path

        with pytest.raises(ValueError, match="no initial state"):
            canonical_path(MachineSpec("empty"))


class TestReservationTable:
    def test_pipeline5_resources_per_stage(self, pipeline5_spec):
        table = dict(reservation_table(pipeline5_spec))
        assert table["F"] == ("m_f",)
        assert table["D"] == ("m_d",)
        assert "m_r" in table["E"] and "m_e" in table["E"]
        assert "m_r" in table["W"]  # update token held to write-back

    def test_follows_canonical_path_order(self, pipeline5_spec):
        states = [state for state, _ in reservation_table(pipeline5_spec)]
        assert states == ["F", "D", "E", "B", "W"]


class TestOperandLatencies:
    def test_forwarding_shortens_latencies(self):
        from repro.analysis import operand_latencies

        with_fw = operand_latencies(
            lambda p: StrongArmModel(p, perfect_memory=True), classes=("alu", "load")
        )
        without_fw = operand_latencies(
            lambda p: Pipeline5Model(p), classes=("alu",)
        )
        assert with_fw["alu"] == 0  # back-to-back
        assert with_fw["load"] >= 1  # load-use bubble
        assert without_fw["alu"] > with_fw["alu"]
