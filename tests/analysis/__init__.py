"""Test package."""
