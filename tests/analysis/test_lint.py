"""Tests for the osmlint static-analysis framework (OSM001–OSM008).

Every rule gets one triggering (positive) and one passing (negative)
case on a minimal hand-built spec, plus triage tests pinning that every
bundled model lints clean and the seeded-bug check from the issue:
dropping a Release primitive from pipeline5's retire edge must surface
as a token-leak diagnostic.
"""

import pytest

from repro.analysis.lint import (
    Severity,
    analyze_buffers,
    available_specs,
    build_spec,
    lint_spec,
)
from repro.core import (
    ALWAYS,
    Allocate,
    AllocateMany,
    Condition,
    Discard,
    Guard,
    Inquire,
    MachineSpec,
    PoolManager,
    Release,
    ReleaseMany,
    SlotManager,
)


def clean_spec() -> MachineSpec:
    """A minimal two-stage pipeline with a tidy token lifecycle."""
    a, b = SlotManager("A"), SlotManager("B")
    spec = MachineSpec("clean")
    spec.state("I", initial=True)
    spec.state("P")
    spec.state("Q")
    spec.edge("I", "P", Condition([Allocate(a)]), label="enter")
    spec.edge("P", "Q", Condition([Allocate(b), Release("A")]), label="advance")
    spec.edge("Q", "I", Condition([Release("B")]), label="retire")
    spec.validate()
    return spec


def codes_of(report, code):
    return [d for d in report.by_code(code) if not d.suppressed]


class TestTokenLeak:
    """OSM001."""

    def test_definite_leak_is_an_error(self):
        a = SlotManager("A")
        spec = MachineSpec("leak")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]), label="enter")
        spec.edge("P", "I", ALWAYS, label="retire")  # forgets Release("A")
        report = lint_spec(spec)
        findings = codes_of(report, "OSM001")
        assert findings and findings[0].severity is Severity.ERROR
        assert findings[0].edge == "retire@1"
        assert "'A'" in findings[0].message
        assert not report.ok

    def test_conditional_leak_is_a_warning(self):
        a = SlotManager("A")
        spec = MachineSpec("mayleak")
        spec.state("I", initial=True)
        spec.state("P")
        # callable identifier: the grant may be skipped at run time
        spec.edge("I", "P", Condition([Allocate(a, ident=lambda op: None)]))
        spec.edge("P", "I", ALWAYS, label="retire")
        report = lint_spec(spec)
        findings = codes_of(report, "OSM001")
        assert findings and findings[0].severity is Severity.WARNING
        assert report.ok  # warnings do not gate

    def test_clean_lifecycle_has_no_leak(self):
        assert not lint_spec(clean_spec()).by_code("OSM001")


class TestVacuousRelease:
    """OSM002."""

    def test_release_of_never_allocated_slot_warns(self):
        a = SlotManager("A")
        spec = MachineSpec("typo")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        # "AA" is a typo for "A": vacuously succeeds every time
        spec.edge("P", "I", Condition([Release("AA"), Release("A")]), label="retire")
        report = lint_spec(spec)
        findings = codes_of(report, "OSM002")
        assert findings and findings[0].severity is Severity.WARNING
        assert "'AA'" in findings[0].message

    def test_optional_resource_idiom_not_reported(self):
        # Conditionally allocated slot, unconditionally released: the
        # strongarm m_mul idiom.  Held on at least one path -> silent.
        a = SlotManager("A")
        spec = MachineSpec("optional")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a, ident=lambda op: None)]))
        spec.edge("P", "I", Condition([Release("A")]))
        assert not lint_spec(spec).by_code("OSM002")


class TestDoubleAllocate:
    """OSM003."""

    def test_definite_double_allocate_is_an_error(self):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("double")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)]))
        # reuses slot "A" while the A token still sits there
        spec.edge("P", "Q", Condition([Allocate(b, slot="A")]), label="clobber")
        spec.edge("Q", "I", Condition([Release("A")]))
        report = lint_spec(spec)
        findings = codes_of(report, "OSM003")
        assert findings and findings[0].severity is Severity.ERROR
        assert findings[0].edge == "clobber@1"

    def test_conditional_double_allocate_is_a_warning(self):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("maydouble")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "Q", Condition([Allocate(b, ident=lambda op: None, slot="A")]))
        spec.edge("Q", "I", Condition([Release("A")]))
        report = lint_spec(spec)
        findings = codes_of(report, "OSM003")
        assert findings and findings[0].severity is Severity.WARNING

    def test_release_then_reallocate_is_fine(self):
        a = SlotManager("A")
        spec = MachineSpec("recycle")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "Q", Condition([Release("A"), Allocate(a)]))
        spec.edge("Q", "I", Condition([Release("A")]))
        assert not lint_spec(spec).by_code("OSM003")


class TestAmbiguousSiblings:
    """OSM004."""

    def test_indistinguishable_same_priority_edges_warn(self):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("ambiguous")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.state("R")
        spec.edge("I", "P", Condition([Allocate(a)]))
        # identical conditions, same priority: declaration order decides
        spec.edge("P", "Q", Condition([Allocate(b), Release("A")]), label="left")
        spec.edge("P", "R", Condition([Allocate(b), Release("A")]), label="right")
        spec.edge("Q", "I", Condition([Release("B")]))
        spec.edge("R", "I", Condition([Release("B")]))
        report = lint_spec(spec)
        findings = codes_of(report, "OSM004")
        assert findings and findings[0].severity is Severity.WARNING
        assert "right@2" in findings[0].message

    def test_guard_distinguished_edges_not_reported(self):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("routed")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.state("R")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "Q", Condition(
            [Guard(lambda op: True, label="is-alu"), Allocate(b), Release("A")]))
        spec.edge("P", "R", Condition(
            [Guard(lambda op: False, label="is-mem"), Allocate(b), Release("A")]))
        spec.edge("Q", "I", Condition([Release("B")]))
        spec.edge("R", "I", Condition([Release("B")]))
        assert not lint_spec(spec).by_code("OSM004")

    def test_distinct_priorities_not_reported(self):
        a = SlotManager("A")
        spec = MachineSpec("prioritised")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "I", Condition([Release("A")]), priority=1)
        spec.edge("P", "I", Condition([Release("A")]))
        assert not lint_spec(spec).by_code("OSM004")


class TestShadowedEdge:
    """OSM005."""

    def test_edge_after_unconditional_sibling_is_dead(self):
        a = SlotManager("A")
        spec = MachineSpec("shadow")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        # Discard-only condition never fails, so the reset edge below
        # it in probe order can never fire.
        spec.edge("P", "I", Condition([Discard()]), priority=1, label="flush")
        spec.edge("P", "I", Condition([Release("A")]), label="retire")
        report = lint_spec(spec)
        findings = codes_of(report, "OSM005")
        assert findings and findings[0].severity is Severity.ERROR
        assert findings[0].edge == "retire@2"
        assert "flush@1" in findings[0].message

    def test_unconditional_edge_last_in_probe_order_is_fine(self):
        a = SlotManager("A")
        spec = MachineSpec("fallback")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        # normal retirement probes first; unconditional flush is the
        # fallback when it fails -- nothing is shadowed
        spec.edge("P", "I", Condition([Release("A")]), priority=1)
        spec.edge("P", "I", Condition([Discard()]))
        assert not lint_spec(spec).by_code("OSM005")


class TestReachability:
    """OSM006."""

    def test_unreachable_trapping_and_dead_edges(self):
        spec = MachineSpec("broken-graph")
        spec.state("I", initial=True)
        spec.state("Trap")
        spec.state("Island")
        spec.edge("I", "Trap", ALWAYS)
        spec.edge("Island", "I", ALWAYS, label="ghost")
        report = lint_spec(spec)
        findings = report.by_code("OSM006")
        messages = " | ".join(d.message for d in findings)
        assert "'Island' is unreachable" in messages
        assert "'Trap' has no outgoing edges" in messages
        assert any(
            d.edge == "ghost@1" and d.severity is Severity.WARNING
            for d in findings
        )
        assert not report.ok

    def test_clean_graph_has_no_findings(self):
        assert not lint_spec(clean_spec()).by_code("OSM006")


class TestCapacity:
    """OSM007."""

    def test_demand_above_slot_capacity_is_an_error(self):
        a = SlotManager("A")  # capacity 1
        spec = MachineSpec("greedy")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a), Allocate(a, slot="A2")]),
                  label="enter")
        spec.edge("P", "I", Condition([Release("A"), Release("A2")]))
        report = lint_spec(spec)
        findings = codes_of(report, "OSM007")
        assert findings and findings[0].severity is Severity.ERROR
        assert findings[0].edge == "enter@0"
        assert "capacity is 1" in findings[0].message

    def test_pool_with_room_is_fine(self):
        a = PoolManager("A", size=2)
        spec = MachineSpec("pooled")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a), Allocate(a, slot="A2")]))
        spec.edge("P", "I", Condition([Release("A"), Release("A2")]))
        assert not lint_spec(spec).by_code("OSM007")


class TestResourceCycle:
    """OSM008."""

    def test_cyclic_pipeline_warns(self):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("cyclic")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "Q", Condition([Allocate(b)]))
        spec.edge("Q", "P", Condition([Allocate(a, slot="A2"), Release("A")]))
        spec.edge("Q", "I", Condition([Release("A"), Release("B")]))
        report = lint_spec(spec)
        findings = codes_of(report, "OSM008")
        assert findings and findings[0].severity is Severity.WARNING
        assert any("A" in d.message and "B" in d.message for d in findings)

    def test_linear_pipeline_has_no_cycle(self):
        assert not lint_spec(clean_spec()).by_code("OSM008")


class TestSuppression:
    def test_edge_allow_suppresses_but_keeps_the_finding(self):
        a = SlotManager("A")
        spec = MachineSpec("allowed")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "I", ALWAYS, label="retire").allow_lint("OSM001")
        report = lint_spec(spec)
        findings = report.by_code("OSM001")
        assert findings and all(d.suppressed for d in findings)
        assert report.ok
        assert not report.errors

    def test_edge_allow_keyword_form(self):
        a = SlotManager("A")
        spec = MachineSpec("allowed-kw")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "I", ALWAYS, label="retire", allow=("OSM001",))
        assert lint_spec(spec).ok

    def test_spec_allow_suppresses_everywhere(self):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("cyclic-ok")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "Q", Condition([Allocate(b)]))
        spec.edge("Q", "P", Condition([Allocate(a, slot="A2"), Release("A")]))
        spec.edge("Q", "I", Condition([Release("A"), Release("B")]))
        spec.allow_lint("OSM008")
        report = lint_spec(spec)
        assert report.by_code("OSM008")
        assert all(d.suppressed for d in report.by_code("OSM008"))

    def test_suppression_does_not_leak_to_other_edges(self):
        a = SlotManager("A")
        spec = MachineSpec("strict")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)])).allow_lint("OSM001")
        spec.edge("P", "Q", ALWAYS)
        spec.edge("Q", "I", ALWAYS, label="retire")  # leaks, not allowed here
        report = lint_spec(spec)
        assert codes_of(report, "OSM001")
        assert not report.ok


class TestEngine:
    def test_rule_filter_runs_only_requested_passes(self):
        report = lint_spec(clean_spec(), codes=["OSM001", "OSM006"])
        assert sorted(report.passes_run) == ["OSM001", "OSM006"]

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(ValueError, match="OSM999"):
            lint_spec(clean_spec(), codes=["OSM999"])

    def test_all_passes_recorded_even_when_clean(self):
        report = lint_spec(clean_spec())
        assert report.passes_run == [
            "OSM001", "OSM002", "OSM003", "OSM004",
            "OSM005", "OSM006", "OSM007", "OSM008",
        ]

    def test_report_json_round_trip(self):
        import json

        report = lint_spec(clean_spec())
        payload = json.loads(report.render_json())
        assert payload["spec"] == "clean"
        assert payload["ok"] is True
        assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}
        assert payload["diagnostics"] == []

    def test_diagnostic_render_shape(self):
        a = SlotManager("A")
        spec = MachineSpec("shape")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "I", ALWAYS, label="retire")
        diagnostic = lint_spec(spec).by_code("OSM001")[0]
        assert diagnostic.location == "shape:P:retire@1"
        assert diagnostic.render().startswith(
            "shape:P:retire@1: error: OSM001 (token-leak):"
        )


class TestBufferAnalysis:
    def test_allocate_many_family_released_by_prefix(self):
        pool = PoolManager("R", size=4)
        spec = MachineSpec("family")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition(
            [AllocateMany(pool, idents=lambda op: [1, 2], slot="r")]))
        spec.edge("P", "I", Condition([ReleaseMany("r")]))
        analysis = analyze_buffers(spec)
        assert not analysis.leaks
        report = lint_spec(spec)
        assert not report.by_code("OSM001") and not report.by_code("OSM002")

    def test_inquire_and_guard_leave_the_buffer_alone(self):
        a = SlotManager("A")
        spec = MachineSpec("probe-only")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition(
            [Inquire(a), Guard(lambda op: True, label="ready"), Allocate(a)]))
        spec.edge("P", "I", Condition([Release("A")]))
        analysis = analyze_buffers(spec)
        assert not analysis.leaks and not analysis.double_allocates

    def test_exploration_is_bounded(self):
        analysis = analyze_buffers(clean_spec(), max_configs=1)
        assert analysis.truncated


class TestBundledModels:
    """Triage commitment: every bundled and ADL-synthesized spec lints
    completely clean — zero errors *and* zero warnings, none suppressed."""

    def test_registry_lists_all_bundled_specs(self):
        assert available_specs() == [
            "adl-pipeline5", "adl-strongarm", "multithread",
            "pipeline5", "ppc750", "strongarm", "vliw",
        ]

    @pytest.mark.parametrize("name", [
        "pipeline5", "strongarm", "vliw", "multithread", "ppc750",
        "adl-pipeline5", "adl-strongarm",
    ])
    def test_bundled_spec_lints_clean(self, name):
        report = lint_spec(build_spec(name))
        assert report.ok, report.render_text()
        assert not report.active, report.render_text()

    def test_unknown_spec_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="pipeline5"):
            build_spec("nonesuch")


class TestSeededBug:
    """Issue acceptance check: dropping one Release primitive from
    pipeline5's retire edge must surface as an OSM001 token leak."""

    def test_dropping_release_from_retire_edge_reports_leak(self):
        spec = build_spec("pipeline5")
        retire = next(e for e in spec.edges if e.label == "retire")
        retire.condition = Condition([
            p for p in retire.condition.primitives
            if not (isinstance(p, Release) and p.slot == "m_w")
        ])
        report = lint_spec(spec)
        assert not report.ok
        leaks = codes_of(report, "OSM001")
        assert leaks and leaks[0].severity is Severity.ERROR
        assert leaks[0].edge == "retire@5"
        assert "'m_w'" in leaks[0].message
