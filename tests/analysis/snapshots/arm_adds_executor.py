def _exec(state):
    r = state.regs.values
    info = ExecInfo(True, 32772)
    _m = r[3]
    _o = _m
    _t, _c, _v = _add(r[2], _o)
    state.flag_n = _t >> 31 & 1
    state.flag_z = 1 if _t == 0 else 0
    state.flag_c = _c
    state.flag_v = _v
    r[1] = _t
    state.pc = 32772
    return info
