def _fused_step(osm, clock, cls_3=cls_3, cls_9=cls_9, edge_15=edge_15, dst_16=dst_16, action_17=action_17):
    osm.blocked_on = None
    buffer = osm.token_buffer
    while True:
        r0t1 = buffer.get('m_w')
        if r0t1 is not None:
            r0m2 = r0t1.manager
            if type(r0m2) is cls_3:
                if r0t1 is not r0m2.token:
                    raise TokenError('%s: release of foreign token %r' % (r0m2.name, r0t1))
                if r0t1.holder is not osm:
                    raise TokenError('%s: %r does not hold %r' % (r0m2.name, osm, r0t1))
                if r0m2.hold_release:
                    osm.blocked_on = (r0m2, 'm_w')
                    break
            elif not r0m2.release(osm, r0t1, osm._txn):
                osm.blocked_on = (r0m2, 'm_w')
                break
        r1l4 = []
        r1ok5 = True
        for r1s6, r1t7 in list(buffer.items()):
            if not r1s6.startswith('rupd'):
                continue
            r1m8 = r1t7.manager
            if type(r1m8) is cls_9:
                if r1t7.holder is not osm:
                    raise TokenError('%s: invalid release of %r by %r' % (r1m8.name, r1t7, osm))
            elif not r1m8.release(osm, r1t7, osm._txn):
                osm.blocked_on = (r1m8, r1s6)
                r1ok5 = False
                break
            r1l4.append((r1s6, r1t7, r1m8, None))
        if not r1ok5:
            break
        if r0t1 is not None:
            del buffer['m_w']
            r0t1.holder = None
            if type(r0m2) is cls_3:
                r0m2.n_releases += 1
            else:
                r0m2.on_release_commit(osm, r0t1, None)
        for _cs10, _ct11, _cm12, _cv13 in r1l4:
            del buffer[_cs10]
            _ct11.holder = None
            if type(_cm12) is cls_9:
                _cm12.n_releases += 1
                _cm12._outstanding -= 1
                _wl14 = _cm12._writers[_ct11.index]
                if osm in _wl14:
                    _wl14.remove(osm)
                if _cv13 is not None:
                    _cm12.backing.write(_ct11.index, _cv13)
            else:
                _cm12.on_release_commit(osm, _ct11, _cv13)
        osm.current = dst_16
        osm.last_edge = edge_15
        osm.n_transitions += 1
        action_17(osm)
        if buffer:
            raise TokenError('%s: returned to initial state still holding %s' % (osm.name, sorted(buffer)))
        osm.operation = None
        osm.age = -1
        return edge_15
    return None
