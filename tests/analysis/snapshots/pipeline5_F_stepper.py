def _fused_step(osm, clock, mgr_1=mgr_1, doomed_2=doomed_2, edge_6=edge_6, dst_7=dst_7, action_8=action_8, mgr_9=mgr_9, slot_tok_11=slot_tok_11, cls_14=cls_14, edge_15=edge_15, dst_16=dst_16):
    osm.blocked_on = None
    buffer = osm.token_buffer
    while True:
        if id(osm) not in doomed_2:
            osm.blocked_on = (mgr_1, None)
            break
        mgr_1.n_inquiries += 1
        d1l3 = list(buffer.items())
        for _ds4, _dt5 in d1l3:
            del buffer[_ds4]
            _dt5.holder = None
            _dt5.manager.on_discard(osm, _dt5)
        osm.current = dst_7
        osm.last_edge = edge_6
        osm.n_transitions += 1
        action_8(osm)
        if buffer:
            raise TokenError('%s: returned to initial state still holding %s' % (osm.name, sorted(buffer)))
        osm.operation = None
        osm.age = -1
        return edge_6
    while True:
        a0t10 = slot_tok_11 if slot_tok_11.holder is None else None
        if a0t10 is None:
            osm.blocked_on = (mgr_9, None)
            break
        r1t12 = buffer.get('m_f')
        if r1t12 is not None:
            r1m13 = r1t12.manager
            if type(r1m13) is cls_14:
                if r1t12 is not r1m13.token:
                    raise TokenError('%s: release of foreign token %r' % (r1m13.name, r1t12))
                if r1t12.holder is not osm:
                    raise TokenError('%s: %r does not hold %r' % (r1m13.name, osm, r1t12))
                if r1m13.hold_release:
                    osm.blocked_on = (r1m13, 'm_f')
                    break
            elif not r1m13.release(osm, r1t12, osm._txn):
                osm.blocked_on = (r1m13, 'm_f')
                break
        if r1t12 is not None:
            del buffer['m_f']
            r1t12.holder = None
            if type(r1m13) is cls_14:
                r1m13.n_releases += 1
            else:
                r1m13.on_release_commit(osm, r1t12, None)
        a0t10.holder = osm
        buffer['m_d'] = a0t10
        mgr_9.n_allocates += 1
        osm.current = dst_16
        osm.last_edge = edge_15
        osm.n_transitions += 1
        return edge_15
    return None
