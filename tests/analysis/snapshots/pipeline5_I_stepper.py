def _fused_step(osm, clock, mgr_1=mgr_1, fetch_unit_3=fetch_unit_3, slot_tok_4=slot_tok_4, edge_5=edge_5, dst_6=dst_6, action_7=action_7):
    osm.blocked_on = None
    buffer = osm.token_buffer
    while True:
        a0t2 = None
        if not (fetch_unit_3.halted or fetch_unit_3._redirect_pending is not None):
            a0t2 = slot_tok_4 if slot_tok_4.holder is None else None
        if a0t2 is None:
            osm.blocked_on = (mgr_1, None)
            break
        a0t2.holder = osm
        buffer['m_f'] = a0t2
        mgr_1.n_allocates += 1
        osm.current = dst_6
        osm.last_edge = edge_5
        osm.n_transitions += 1
        osm.age = clock
        action_7(osm)
        return edge_5
    return None
