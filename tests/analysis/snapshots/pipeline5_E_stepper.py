def _fused_step(osm, clock, mgr_1=mgr_1, slot_tok_3=slot_tok_3, cls_6=cls_6, edge_7=edge_7, dst_8=dst_8, action_9=action_9):
    osm.blocked_on = None
    buffer = osm.token_buffer
    while True:
        a0t2 = slot_tok_3 if slot_tok_3.holder is None else None
        if a0t2 is None:
            osm.blocked_on = (mgr_1, None)
            break
        r1t4 = buffer.get('m_e')
        if r1t4 is not None:
            r1m5 = r1t4.manager
            if type(r1m5) is cls_6:
                if r1t4 is not r1m5.token:
                    raise TokenError('%s: release of foreign token %r' % (r1m5.name, r1t4))
                if r1t4.holder is not osm:
                    raise TokenError('%s: %r does not hold %r' % (r1m5.name, osm, r1t4))
                if r1m5.hold_release:
                    osm.blocked_on = (r1m5, 'm_e')
                    break
            elif not r1m5.release(osm, r1t4, osm._txn):
                osm.blocked_on = (r1m5, 'm_e')
                break
        if r1t4 is not None:
            del buffer['m_e']
            r1t4.holder = None
            if type(r1m5) is cls_6:
                r1m5.n_releases += 1
            else:
                r1m5.on_release_commit(osm, r1t4, None)
        a0t2.holder = osm
        buffer['m_b'] = a0t2
        mgr_1.n_allocates += 1
        osm.current = dst_8
        osm.last_edge = edge_7
        osm.n_transitions += 1
        action_9(osm)
        return edge_7
    return None
