def _fused_step(osm, clock, mgr_1=mgr_1, doomed_2=doomed_2, edge_6=edge_6, dst_7=dst_7, action_8=action_8, mgr_9=mgr_9, slot_tok_11=slot_tok_11, mgr_12=mgr_12, writers_14=writers_14, upd_21=upd_21, cls_26=cls_26, edge_29=edge_29, dst_30=dst_30, action_31=action_31):
    osm.blocked_on = None
    buffer = osm.token_buffer
    while True:
        if id(osm) not in doomed_2:
            osm.blocked_on = (mgr_1, None)
            break
        mgr_1.n_inquiries += 1
        d1l3 = list(buffer.items())
        for _ds4, _dt5 in d1l3:
            del buffer[_ds4]
            _dt5.holder = None
            _dt5.manager.on_discard(osm, _dt5)
        osm.current = dst_7
        osm.last_edge = edge_6
        osm.n_transitions += 1
        action_8(osm)
        if buffer:
            raise TokenError('%s: returned to initial state still holding %s' % (osm.name, sorted(buffer)))
        osm.operation = None
        osm.age = -1
        return edge_6
    while True:
        a0t10 = slot_tok_11 if slot_tok_11.holder is None else None
        if a0t10 is None:
            osm.blocked_on = (mgr_9, None)
            break
        i1v13 = osm.operation.instr.src_regs
        if i1v13 is not None:
            if not isinstance(i1v13, (list, tuple)):
                if i1v13 is not None and writers_14[i1v13]:
                    osm.blocked_on = (mgr_12, i1v13)
                    break
                mgr_12.n_inquiries += 1
            else:
                i1ok15 = True
                for i1s16 in i1v13:
                    if i1s16 is not None and writers_14[i1s16]:
                        osm.blocked_on = (mgr_12, i1s16)
                        i1ok15 = False
                        break
                    mgr_12.n_inquiries += 1
                if not i1ok15:
                    break
        m2l17 = []
        m2ok18 = True
        for m2i19 in osm.operation.instr.dst_regs or ():
            m2t20 = None
            _mo22 = mgr_12.max_outstanding
            if m2i19 is not None and (_mo22 is None or mgr_12._outstanding < _mo22) and (len(writers_14[m2i19]) < mgr_12.updates_per_reg):
                for _rt23 in upd_21[m2i19]:
                    if _rt23.holder is None and _rt23 not in m2l17:
                        m2t20 = _rt23
                        break
            if m2t20 is None:
                osm.blocked_on = (mgr_12, m2i19)
                m2ok18 = False
                break
            m2l17.append(m2t20)
        if not m2ok18:
            break
        r3t24 = buffer.get('m_d')
        if r3t24 is not None:
            r3m25 = r3t24.manager
            if type(r3m25) is cls_26:
                if r3t24 is not r3m25.token:
                    raise TokenError('%s: release of foreign token %r' % (r3m25.name, r3t24))
                if r3t24.holder is not osm:
                    raise TokenError('%s: %r does not hold %r' % (r3m25.name, osm, r3t24))
                if r3m25.hold_release:
                    osm.blocked_on = (r3m25, 'm_d')
                    break
            elif not r3m25.release(osm, r3t24, osm._txn):
                osm.blocked_on = (r3m25, 'm_d')
                break
        if r3t24 is not None:
            del buffer['m_d']
            r3t24.holder = None
            if type(r3m25) is cls_26:
                r3m25.n_releases += 1
            else:
                r3m25.on_release_commit(osm, r3t24, None)
        a0t10.holder = osm
        buffer['m_e'] = a0t10
        mgr_9.n_allocates += 1
        for _gi27, _gt28 in enumerate(m2l17):
            _gt28.holder = osm
            buffer['rupd' + str(_gi27)] = _gt28
            mgr_12.n_allocates += 1
            mgr_12._outstanding += 1
            writers_14[_gt28.index].append(osm)
        osm.current = dst_30
        osm.last_edge = edge_29
        osm.n_transitions += 1
        action_31(osm)
        return edge_29
    return None
