"""Golden snapshots of generated fast-path code.

transcheck (``repro certify``) validates generated code *semantically* —
by symbolic replay against the reference plan.  These tests pin the
other axis: the exact *shape* of the generated artifacts, so an
unintended generator change is visible as a reviewable diff even when
it happens to stay semantics-preserving.

Sources are normalized through :func:`repro.analysis.certify.astnorm.
normalize_source` (parse + unparse) before comparison, so formatting
details of the code writers never count as drift.  To regenerate after
an intentional generator change::

    UPDATE_SNAPSHOTS=1 python -m pytest tests/analysis/test_codegen_snapshots.py

and review the snapshot diff alongside the generator change.
"""

import difflib
import os
from pathlib import Path

import pytest

from repro.analysis.certify.astnorm import normalize_source
from repro.analysis.registry import build_spec

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"

#: the pipeline5 states whose fused steppers are pinned (all of them —
#: the model fuses every state)
PIPELINE5_STATES = ("I", "F", "D", "E", "B", "W")


def _assert_matches_snapshot(name: str, source: str) -> None:
    normalized = normalize_source(source) + "\n"
    path = SNAPSHOT_DIR / name
    if os.environ.get("UPDATE_SNAPSHOTS"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(normalized)
        return
    assert path.exists(), (
        f"missing snapshot {name}; generate it with "
        f"UPDATE_SNAPSHOTS=1 python -m pytest {__file__}"
    )
    expected = path.read_text()
    if normalized != expected:
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), normalized.splitlines(),
            fromfile=f"snapshots/{name}", tofile="generated", lineterm=""))
        pytest.fail(
            f"generated code drifted from snapshot {name} — review the "
            f"generator change (or UPDATE_SNAPSHOTS=1 if intended):\n{diff}")


@pytest.fixture(scope="module")
def pipeline5_spec():
    return build_spec("pipeline5")


@pytest.mark.parametrize("state_name", PIPELINE5_STATES)
def test_pipeline5_fused_stepper_snapshot(pipeline5_spec, state_name):
    state = pipeline5_spec.states[state_name]
    assert state._fused is not None, f"{state_name}: expected a fused stepper"
    _assert_matches_snapshot(
        f"pipeline5_{state_name}_stepper.py",
        state._fused.__fused_source__)


def test_arm_execgen_adds_snapshot():
    """One representative execgen closure: a flag-setting ALU op covers
    the register write, the four flag writes and the PC advance."""
    from repro.isa.arm import assemble, decode
    from repro.isa.arm.execgen import _translate

    program = assemble("""
    .text
_start:
    adds r1, r2, r3
    swi #0
""")
    addr, word = program.text_words()[0]
    source = _translate(decode(addr, word), "_exec")
    assert source is not None
    _assert_matches_snapshot("arm_adds_executor.py", source)


def test_snapshots_contain_no_stale_files():
    """Every committed snapshot is exercised by a test above — a renamed
    state or instruction must not leave orphans behind."""
    expected = {f"pipeline5_{name}_stepper.py" for name in PIPELINE5_STATES}
    expected.add("arm_adds_executor.py")
    actual = {p.name for p in SNAPSHOT_DIR.glob("*.py")}
    assert actual == expected
