"""Tests for the effectcheck static effect/purity analyzer (EFF001–EFF008).

Every rule gets a triggering case on a minimal hand-built spec, the
bundled models are pinned effects-clean (modulo audited suppressions),
and the compilability report is round-tripped through
``apply_compilability`` to prove the certification actually gates the
edge compiler.
"""

import pytest

from repro.analysis.effects import (
    CompilabilityReport,
    compilability_report,
    effects_spec,
)
from repro.analysis.effects.footprint import Footprint, analyze_callable
from repro.analysis.registry import available_specs, build_spec
from repro.core import (
    Allocate,
    Condition,
    Guard,
    MachineSpec,
    Release,
    SlotManager,
    apply_compilability,
    rank_stable_in_flight,
)
from repro.core.primitives import Primitive

# module-global mutated by the EFF007 fixture
TRACE = []


def clean_spec() -> MachineSpec:
    """A two-stage pipeline whose edge code is trivially pure."""
    a, b = SlotManager("A"), SlotManager("B")
    spec = MachineSpec("clean")
    spec.state("I", initial=True)
    spec.state("P")
    spec.state("Q")
    spec.edge("I", "P", Condition([Allocate(a)]), label="enter")
    spec.edge("P", "Q", Condition([Allocate(b), Release("A")]), label="advance")
    spec.edge("Q", "I", Condition([Release("B")]), label="retire")
    spec.validate()
    return spec


def one_edge_spec(condition, **edge_kwargs) -> MachineSpec:
    """``I --condition--> P --Release--> I`` around a single slot."""
    spec = MachineSpec("fixture")
    spec.state("I", initial=True)
    spec.state("P")
    spec.edge("I", "P", condition, **edge_kwargs)
    spec.edge("P", "I", Condition([Release("S")]), label="retire")
    return spec


def unsuppressed(report, code):
    return [d for d in report.by_code(code) if not d.suppressed]


class TestCleanSpec:
    def test_no_findings_and_fully_compilable(self):
        spec = clean_spec()
        report = effects_spec(spec)
        assert report.ok
        assert not report.diagnostics
        comp = compilability_report(spec, report)
        assert comp.fully_compilable
        assert comp.fusable_states == ["I", "P", "Q"]
        assert comp.unsafe_edges == []

    def test_all_eight_passes_run(self):
        report = effects_spec(clean_spec())
        assert report.passes_run == [f"EFF00{i}" for i in range(1, 9)]

    def test_unknown_code_filter_raises(self):
        with pytest.raises(ValueError, match="EFF999"):
            effects_spec(clean_spec(), codes=["EFF999"])


class TestImpureGuard:
    """EFF001."""

    def test_guard_mutating_osm_is_an_error(self):
        stage = SlotManager("S")

        def sneaky(osm):
            osm.operation = None
            return True

        spec = one_edge_spec(
            Condition([Guard(sneaky, "sneaky"), Allocate(stage)]), label="grab"
        )
        report = effects_spec(spec)
        findings = unsuppressed(report, "EFF001")
        assert findings and not report.ok
        assert findings[0].edge == "grab@0"
        assert "osm.operation" in findings[0].message

    def test_guard_mutating_closure_object_is_an_error(self):
        stage = SlotManager("S")
        seen = []

        def counting(osm):
            seen.append(osm)
            return True

        spec = one_edge_spec(
            Condition([Guard(counting, "counting"), Allocate(stage)])
        )
        report = effects_spec(spec)
        assert unsuppressed(report, "EFF001")

    def test_pure_guard_passes(self):
        stage = SlotManager("S")
        spec = one_edge_spec(
            Condition([Guard(lambda osm: osm.age > 0, "aged"), Allocate(stage)])
        )
        report = effects_spec(spec)
        assert not unsuppressed(report, "EFF001")

    def test_impure_dynamic_identifier_is_an_error(self):
        stage = SlotManager("S")

        def ident(osm):
            osm.tag = "x"
            return "t0"

        spec = one_edge_spec(Condition([Allocate(stage, ident=ident)]))
        report = effects_spec(spec)
        assert unsuppressed(report, "EFF001")


class TestRankStabilityLie:
    """EFF002."""

    def test_marked_key_reading_mutable_state_is_an_error(self):
        @rank_stable_in_flight
        def lying_rank(osm):
            return len(osm.token_buffer)

        spec = clean_spec()
        spec.analysis_rank_key = lying_rank
        report = effects_spec(spec)
        findings = unsuppressed(report, "EFF002")
        assert findings and not report.ok
        assert "rank_stable_in_flight" in findings[0].message

    def test_marked_key_on_stable_inputs_passes(self):
        @rank_stable_in_flight
        def honest_rank(osm):
            return (osm.age, osm.serial)

        spec = clean_spec()
        spec.analysis_rank_key = honest_rank
        report = effects_spec(spec)
        assert not unsuppressed(report, "EFF002")

    def test_unmarked_key_is_never_reported(self):
        spec = clean_spec()
        spec.analysis_rank_key = lambda osm: len(osm.token_buffer)
        report = effects_spec(spec)
        assert not unsuppressed(report, "EFF002")

    def test_director_breadcrumb_feeds_the_rule(self):
        """Director.add stamps the rank key onto the spec, so building a
        model with a lying marked ranking is enough to get caught."""
        from repro.core.director import Director
        from repro.core.osm import OperationStateMachine

        @rank_stable_in_flight
        def lying_rank(osm):
            return len(osm.token_buffer)

        spec = clean_spec()
        director = Director(rank_key=lying_rank, deadlock_check=False)
        director.add(OperationStateMachine(spec))
        assert spec.analysis_rank_key is lying_rank
        assert unsuppressed(effects_spec(spec), "EFF002")


class TestRankInputMutation:
    """EFF003."""

    def _spec_with_interior_action(self, action):
        a, b = SlotManager("A"), SlotManager("B")
        spec = MachineSpec("interior")
        spec.state("I", initial=True)
        spec.state("P")
        spec.state("Q")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "Q", Condition([Allocate(b), Release("A")]), action=action)
        spec.edge("Q", "I", Condition([Release("B")]))
        return spec

    def test_interior_action_writing_rank_input_is_an_error(self):
        from repro.core.director import age_rank

        def bump(osm):
            osm.age += 1

        spec = self._spec_with_interior_action(bump)
        spec.analysis_rank_key = age_rank  # marked rank_stable_in_flight
        findings = unsuppressed(effects_spec(spec), "EFF003")
        assert findings
        assert "osm.age" in findings[0].message

    def test_boundary_action_is_exempt(self):
        """The same write on an I-boundary edge is where re-ranking is
        legal — the director re-sorts there anyway."""
        from repro.core.director import age_rank

        def bump(osm):
            osm.age += 1

        a = SlotManager("A")
        spec = MachineSpec("boundary")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]), action=bump)
        spec.edge("P", "I", Condition([Release("A")]))
        spec.analysis_rank_key = age_rank
        assert not unsuppressed(effects_spec(spec), "EFF003")

    def test_without_marked_key_rule_is_silent(self):
        def bump(osm):
            osm.age += 1

        spec = self._spec_with_interior_action(bump)
        assert not unsuppressed(effects_spec(spec), "EFF003")


class TestWriteRace:
    """EFF004."""

    def test_subset_siblings_writing_same_slot_race(self):
        stage = SlotManager("S")
        spec = MachineSpec("race")
        spec.state("I", initial=True)
        spec.state("P")
        # sig(plain) ⊆ sig(guarded): not statically disjoint, both
        # allocate into slot S
        spec.edge("I", "P", Condition([Allocate(stage)]), label="plain")
        spec.edge(
            "I", "P",
            Condition([Guard(lambda osm: osm.age > 2, "old"), Allocate(stage)]),
            label="guarded",
        )
        spec.edge("P", "I", Condition([Release("S")]))
        report = effects_spec(spec)
        findings = unsuppressed(report, "EFF004")
        assert findings and not report.ok
        assert "slot:S" in findings[0].message

    def test_disjoint_siblings_do_not_race(self):
        """Distinct guards make the siblings statically disjoint — the
        routing idiom of the bundled models — so no race is reported."""
        stage = SlotManager("S")
        spec = MachineSpec("routed")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Guard(lambda o: o.age > 0, "a"),
                                       Allocate(stage)]))
        spec.edge("I", "P", Condition([Guard(lambda o: o.age == 0, "b"),
                                       Allocate(stage)]))
        spec.edge("P", "I", Condition([Release("S")]))
        assert not unsuppressed(effects_spec(spec), "EFF004")

    def test_race_blocks_fusion_but_edge_stays_compilable(self):
        stage = SlotManager("S")
        spec = MachineSpec("race")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(stage)]), label="plain")
        spec.edge(
            "I", "P",
            Condition([Guard(lambda osm: osm.age > 2, "old"), Allocate(stage)]),
            label="guarded",
        )
        spec.edge("P", "I", Condition([Release("S")]))
        comp = compilability_report(spec, effects_spec(spec))
        assert not comp.verdicts["I"].fusable
        assert "EFF004" in comp.verdicts["I"].blockers
        # a race is a scheduling hazard, not a dishonest compiled probe
        assert comp.unsafe_edges == []


class CountingProbe(Primitive):
    """Custom primitive whose probe leaks state — the EFF005 fixture."""

    kind = "counting"

    def __init__(self):
        self.count = 0

    def probe(self, osm, txn) -> bool:
        self.count += 1
        return True

    def __repr__(self):
        return "CountingProbe()"


class HonestProbe(Primitive):
    """Custom primitive honouring the probe protocol."""

    kind = "honest"

    def __init__(self, limit):
        self.limit = limit

    def probe(self, osm, txn) -> bool:
        return osm.age <= self.limit

    def __repr__(self):
        return f"HonestProbe({self.limit})"


class TestProbeDivergence:
    """EFF005."""

    def test_stateful_custom_probe_is_an_error(self):
        stage = SlotManager("S")
        spec = one_edge_spec(Condition([CountingProbe(), Allocate(stage)]))
        report = effects_spec(spec)
        findings = unsuppressed(report, "EFF005")
        assert findings
        assert "CountingProbe" in findings[0].message

    def test_protocol_abiding_custom_probe_passes(self):
        stage = SlotManager("S")
        spec = one_edge_spec(Condition([HonestProbe(3), Allocate(stage)]))
        assert not unsuppressed(effects_spec(spec), "EFF005")

    def test_action_mutating_baked_primitive_attribute(self):
        stage = SlotManager("S")
        probe = HonestProbe(3)

        def retune(osm):
            probe.limit = osm.age

        spec = MachineSpec("retuned")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([probe, Allocate(stage)]))
        spec.edge("P", "I", Condition([Release("S")]), action=retune)
        findings = unsuppressed(effects_spec(spec), "EFF005")
        assert findings
        assert "shared:HonestProbe.limit" in findings[0].message


class TestNondeterminism:
    """EFF006."""

    def test_random_in_guard_is_an_error(self):
        import random

        stage = SlotManager("S")
        spec = one_edge_spec(
            Condition([Guard(lambda osm: random.random() < 0.5, "coin"),
                       Allocate(stage)])
        )
        report = effects_spec(spec)
        findings = unsuppressed(report, "EFF006")
        assert findings and not report.ok

    def test_id_builtin_in_action_is_an_error(self):
        stage = SlotManager("S")

        def act(osm):
            osm.tag = id(osm) % 7

        spec = one_edge_spec(Condition([Allocate(stage)]), action=act)
        assert unsuppressed(effects_spec(spec), "EFF006")


class TestGlobalMutation:
    """EFF007 (warning severity: report stays ok)."""

    def test_action_appending_to_module_global_warns(self):
        stage = SlotManager("S")

        def act(osm):
            TRACE.append(osm.age)

        spec = one_edge_spec(Condition([Allocate(stage)]), action=act)
        report = effects_spec(spec)
        findings = unsuppressed(report, "EFF007")
        assert findings
        assert findings[0].severity.value == "warning"
        assert report.ok  # warnings do not gate


class OptOutProbe(Primitive):
    """Compilable-in-principle primitive that opts out of codegen."""

    kind = "opt-out"
    compilable = False

    def probe(self, osm, txn) -> bool:
        return True

    def __repr__(self):
        return "OptOutProbe()"


class TestOpaqueCode:
    """EFF008."""

    def test_compile_fallback_census_names_the_edge(self):
        stage = SlotManager("S")
        spec = one_edge_spec(
            Condition([OptOutProbe(), Allocate(stage)]), label="slow"
        )
        report = effects_spec(spec)
        findings = unsuppressed(report, "EFF008")
        census = [d for d in findings if "falls back" in d.message]
        assert census
        assert census[0].edge == "slow@0"
        assert "opt-out" in census[0].message

    def test_unanalyzable_probe_time_code_warns(self):
        ns = {}
        exec("def mystery(osm):\n    return True", ns)
        stage = SlotManager("S")
        spec = one_edge_spec(
            Condition([Guard(ns["mystery"], "mystery"), Allocate(stage)])
        )
        report = effects_spec(spec)
        assert unsuppressed(report, "EFF008")
        assert report.ok  # warning, not error

    def test_opacity_blocks_fusion(self):
        stage = SlotManager("S")
        spec = one_edge_spec(
            Condition([OptOutProbe(), Allocate(stage)]), label="slow"
        )
        comp = compilability_report(spec, effects_spec(spec))
        assert not comp.verdicts["I"].fusable
        assert "EFF008" in comp.verdicts["I"].blockers


class TestSuppression:
    def test_edge_allow_suppresses_and_unblocks_compilability(self):
        stage = SlotManager("S")

        def sneaky(osm):
            osm.operation = None
            return True

        spec = one_edge_spec(
            Condition([Guard(sneaky, "sneaky"), Allocate(stage)]), label="grab"
        )
        next(e for e in spec.edges if e.qualname == "grab@0").allow_lint("EFF001")
        report = effects_spec(spec)
        assert report.ok
        assert report.by_code("EFF001")[0].suppressed
        comp = compilability_report(spec, report)
        assert comp.fully_compilable  # audited suppressions are trusted

    def test_spec_allow_suppresses(self):
        stage = SlotManager("S")

        def act(osm):
            TRACE.append(osm.age)

        spec = one_edge_spec(Condition([Allocate(stage)]), action=act)
        spec.allow_lint("EFF007")
        report = effects_spec(spec)
        assert all(d.suppressed for d in report.by_code("EFF007"))


class TestApplyCompilability:
    def test_unsafe_edge_is_pinned_to_the_interpreter(self):
        stage = SlotManager("S")

        def sneaky(osm):
            osm.operation = None
            return True

        spec = one_edge_spec(
            Condition([Guard(sneaky, "sneaky"), Allocate(stage)]), label="grab"
        )
        comp = compilability_report(spec, effects_spec(spec))
        assert comp.unsafe_edges == ["grab@0"]

        pinned = apply_compilability(spec, comp)
        assert pinned == 1
        edge = next(e for e in spec.edges if e.qualname == "grab@0")
        assert edge.compile_mode == "interpreted"

        # rebuilding the plans re-records the edge as a policy fallback
        for state in spec.states.values():
            state.probe_plan()
        assert dict(spec.compile_stats.fallback_edges)["grab@0"] == "policy"
        # idempotent: a second application pins nothing new
        assert apply_compilability(spec, comp) == 0

    def test_pinning_preserves_probe_semantics(self):
        """A pinned edge still probes correctly (interpreted path)."""
        from repro.core.osm import OperationStateMachine

        stage = SlotManager("S")
        spec = one_edge_spec(Condition([Allocate(stage)]), label="grab")
        report = CompilabilityReport(spec="fixture", unsafe_edges=["grab@0"])
        apply_compilability(spec, report)
        osm = OperationStateMachine(spec)
        assert osm.try_transition(0) is not None
        assert osm.current.name == "P"


class TestFootprintAnalyzer:
    """Direct unit coverage of the substrate."""

    def test_pure_lambda(self):
        fp = analyze_callable(lambda osm: osm.age > 0, ("osm",))
        assert fp.pure
        assert "osm.age" in fp.reads

    def test_symbolic_write(self):
        def f(osm):
            osm.operation = None

        fp = analyze_callable(f, ("osm",))
        assert "osm.operation" in fp.writes

    def test_closure_object_write(self):
        holder = SlotManager("H")

        def f(osm):
            holder.extra = 1

        fp = analyze_callable(f, ("osm",))
        assert "shared:SlotManager.extra" in fp.writes

    def test_augmented_assignment_is_a_write(self):
        def f(osm):
            osm.age += 1

        fp = analyze_callable(f, ("osm",))
        assert "osm.age" in fp.writes

    def test_nondet_import_inside_function(self):
        def f(osm):
            import random
            return random.random()

        fp = analyze_callable(f, ("osm",))
        assert fp.nondet

    def test_known_pure_builtin_is_trivially_analyzable(self):
        fp = analyze_callable(len, ("osm",))
        assert fp.analyzable and fp.pure

    def test_unanalyzable_builtin(self):
        fp = analyze_callable(print, ("osm",))
        assert not fp.analyzable
        assert fp.reason

    def test_merge_is_a_union(self):
        a = Footprint(reads={"osm.age"}, writes={"osm.tag"})
        b = Footprint(reads={"osm.serial"}, nondet={"random.random"})
        a.merge(b)
        assert a.reads == {"osm.age", "osm.serial"}
        assert a.writes == {"osm.tag"}
        assert a.nondet == {"random.random"}
        assert not a.pure


@pytest.mark.parametrize("name", available_specs())
def test_bundled_specs_are_effects_clean(name):
    """Every bundled model must certify clean — audited suppressions
    are permitted, unsuppressed findings of any severity are not."""
    spec = build_spec(name)
    report = effects_spec(spec)
    assert report.ok, report.render_text()
    assert not report.warnings, report.render_text()


@pytest.mark.parametrize("name", available_specs())
def test_bundled_specs_are_fully_compilable(name):
    spec = build_spec(name)
    comp = compilability_report(spec, effects_spec(spec))
    assert comp.fully_compilable, comp.to_dict()
