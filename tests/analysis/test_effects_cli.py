"""Tests for the ``repro effects`` CLI subcommand: exit codes, JSON
schema (report + compilability), rule filtering and error handling."""

import json

import pytest

from repro.analysis.registry import _REGISTRY, register_spec
from repro.analysis.diagnostics import SCHEMA_VERSION
from repro.cli import main
from repro.core import Allocate, Condition, Guard, MachineSpec, Release, SlotManager


@pytest.fixture()
def impure_spec_registered():
    """Temporarily register a spec with a guaranteed EFF001 error."""

    def build():
        stage = SlotManager("S")

        def sneaky(osm):
            osm.operation = None
            return True

        spec = MachineSpec("impure")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Guard(sneaky, "sneaky"), Allocate(stage)]),
                  label="grab")
        spec.edge("P", "I", Condition([Release("S")]), label="retire")
        return spec

    register_spec("impure", build)
    yield "impure"
    del _REGISTRY["impure"]


class TestEffectsCli:
    def test_clean_models_exit_zero(self, capsys):
        assert main(["effects", "strongarm", "pipeline5"]) == 0
        out = capsys.readouterr().out
        assert "strongarm: 0 error(s), 0 warning(s)" in out
        assert "strongarm: compilability: fully compilable" in out

    def test_all_alias_covers_every_registered_spec(self, capsys):
        assert main(["effects", "all"]) == 0
        out = capsys.readouterr().out
        for name in ("pipeline5", "strongarm", "vliw", "multithread",
                     "ppc750", "adl-pipeline5", "adl-strongarm"):
            assert f"{name}: compilability:" in out

    def test_error_findings_exit_nonzero(self, impure_spec_registered, capsys):
        assert main(["effects", impure_spec_registered]) == 1
        out = capsys.readouterr().out
        assert "EFF001" in out and "error" in out
        assert "1 unsafe edge(s)" in out

    def test_json_output_schema(self, impure_spec_registered, capsys):
        assert main(["effects", "pipeline5", impure_spec_registered,
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "effects"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["ok"] is False
        assert set(payload["models"]) == {"pipeline5", "impure"}
        assert payload["models"]["pipeline5"]["ok"] is True

        impure = payload["models"]["impure"]
        assert impure["ok"] is False
        assert impure["counts"]["error"] >= 1
        diagnostic = impure["diagnostics"][0]
        assert set(diagnostic) == {
            "code", "rule", "severity", "spec", "state", "edge",
            "message", "suppressed", "source_span",
        }
        assert diagnostic["code"] == "EFF001"
        assert diagnostic["edge"] == "grab@0"

        comp = impure["compilability"]
        assert comp["fully_compilable"] is False
        assert comp["unsafe_edges"] == ["grab@0"]
        assert comp["states"]["I"]["fusable"] is False
        assert "EFF001" in comp["states"]["I"]["blockers"]

        clean_comp = payload["models"]["pipeline5"]["compilability"]
        assert clean_comp["fully_compilable"] is True
        assert clean_comp["unsafe_edges"] == []

    def test_rules_filter(self, impure_spec_registered, capsys):
        # the impurity is EFF001; filtering to EFF007 hides it
        assert main(["effects", impure_spec_registered,
                     "--rules", "EFF007"]) == 0
        out = capsys.readouterr().out
        assert "(1 passes)" in out

    def test_unknown_rule_code_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="EFF999"):
            main(["effects", "pipeline5", "--rules", "EFF999"])

    def test_unknown_model_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="available"):
            main(["effects", "nonesuch"])

    def test_show_suppressed_reveals_audited_findings(self, capsys):
        # ppc750 carries audited suppressions on its fetch edge
        assert main(["effects", "ppc750", "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "[suppressed]" in out
