"""Tests for the bounded model checker."""

import pytest

from repro.analysis.modelcheck import check
from repro.core import (
    ALWAYS,
    Allocate,
    Condition,
    MachineSpec,
    PoolManager,
    Release,
    SlotManager,
)


def linear_pipeline():
    """The Section-4 skeleton: I -> A -> B -> I over slot managers."""
    a, b = SlotManager("a"), SlotManager("b")
    spec = MachineSpec("linear")
    spec.state("I", initial=True)
    spec.state("A")
    spec.state("B")
    spec.edge("I", "A", Condition([Allocate(a)]))
    spec.edge("A", "B", Condition([Allocate(b), Release("a")]))
    spec.edge("B", "I", Condition([Release("b")]))
    spec.validate()
    return spec, [a, b]


def leaky_machine():
    """Deliberate bug: returns to I while still holding a token."""
    pool = PoolManager("p", 2)
    spec = MachineSpec("leaky")
    spec.state("I", initial=True)
    spec.state("S")
    spec.edge("I", "S", Condition([Allocate(pool)]))
    spec.edge("S", "I", ALWAYS)  # forgot the release
    spec.validate()
    return spec, [pool]


def trap_machine():
    """Deliberate bug: a state with no way back to I."""
    slot = SlotManager("s")
    spec = MachineSpec("trap")
    spec.state("I", initial=True)
    spec.state("Stuck")
    spec.edge("I", "Stuck", Condition([Allocate(slot)]))
    # no edge out of Stuck
    return spec, [slot]


def crossing_machine():
    """Two resources acquired in opposite orders by the two machine
    roles — the classic hold-and-wait deadlock."""
    a, b = SlotManager("a"), SlotManager("b")
    spec = MachineSpec("crossing")
    spec.state("I", initial=True)
    spec.state("HoldA")
    spec.state("HoldB")
    spec.state("Both")
    spec.edge("I", "HoldA", Condition([Allocate(a)]))
    spec.edge("I", "HoldB", Condition([Allocate(b)]))
    spec.edge("HoldA", "Both", Condition([Allocate(b, slot="b2")]))
    spec.edge("HoldB", "Both", Condition([Allocate(a, slot="a2")]))
    spec.edge("Both", "I", Condition([Release("a"), Release("b"),
                                      Release("a2"), Release("b2")]))
    spec.validate()
    return spec, [a, b]


class TestModelCheck:
    def test_linear_pipeline_is_safe(self):
        report = check(linear_pipeline, n_osms=3, all_orders=True)
        assert report.safe
        assert report.n_states > 3

    def test_all_orders_explores_more_than_one_schedule(self):
        single = check(linear_pipeline, n_osms=3, all_orders=False)
        every = check(linear_pipeline, n_osms=3, all_orders=True)
        assert every.n_transitions >= single.n_transitions

    def test_leak_detected_as_violation(self):
        # the OSM layer refuses buffer-carrying returns to I at commit
        # time; the checker catches that and reports it as a violation
        # (with a counterexample trace, via the new check package)
        report = check(leaky_machine, n_osms=1)
        assert not report.safe
        assert any("still holding" in v for v in report.violations)

    def test_trap_state_reported(self):
        report = check(trap_machine, n_osms=1)
        assert not report.safe
        assert report.trapped_states

    def test_crossing_deadlock_found_by_exhaustive_search(self):
        """With 2 OSMs, one order reaches (HoldA, HoldB): both stuck."""
        report = check(crossing_machine, n_osms=2, all_orders=True)
        assert report.trapped_states  # the deadlocked configuration
        # and the static analysis agrees there is a cycle
        from repro.analysis.lint.graph import analyze_deadlock

        spec, _ = crossing_machine()
        assert not analyze_deadlock(spec).deadlock_free

    def test_single_osm_cannot_deadlock_the_crossing(self):
        report = check(crossing_machine, n_osms=1)
        assert not report.trapped_states

    def test_truncation_reported(self):
        report = check(linear_pipeline, n_osms=4, max_states=5)
        assert report.truncated
        assert not report.safe
