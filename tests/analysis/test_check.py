"""Tests for the osmcheck model checker (repro.analysis.check)."""

import pytest

from repro.analysis.check import (
    TokenSystem,
    check_model,
    check_spec,
    check_system,
    purify,
)
from repro.analysis.registry import available_specs, build_spec
from repro.core import (
    ALWAYS,
    Allocate,
    Condition,
    MachineSpec,
    PoolManager,
    Release,
    SlotManager,
    SpecError,
)


def linear_pipeline():
    """The Section-4 skeleton: I -> A -> B -> I over slot managers."""
    a, b = SlotManager("a"), SlotManager("b")
    spec = MachineSpec("linear")
    spec.state("I", initial=True)
    spec.state("A")
    spec.state("B")
    spec.edge("I", "A", Condition([Allocate(a)]), label="grab_a")
    spec.edge("A", "B", Condition([Allocate(b), Release("a")]), label="swap")
    spec.edge("B", "I", Condition([Release("b")]), label="retire")
    spec.validate()
    return spec, [a, b]


def leaky_machine():
    """Seeded bug: the S -> I edge forgot its Release."""
    pool = PoolManager("p", 2)
    spec = MachineSpec("leaky")
    spec.state("I", initial=True)
    spec.state("S")
    spec.edge("I", "S", Condition([Allocate(pool)]), label="grab")
    spec.edge("S", "I", ALWAYS, label="drop")  # forgot the release
    spec.validate()
    return spec, [pool]


def double_allocate_machine():
    """Seeded bug: a second Allocate into the same buffer slot silently
    overwrites the first grant."""
    pool = PoolManager("p", 2)
    spec = MachineSpec("double")
    spec.state("I", initial=True)
    spec.state("A")
    spec.state("B")
    spec.edge("I", "A", Condition([Allocate(pool, slot="x")]), label="first")
    spec.edge("A", "B", Condition([Allocate(pool, slot="x")]), label="second")
    spec.edge("B", "I", Condition([Release("x")]), label="retire")
    spec.validate()
    return spec, [pool]


def crossing_machine():
    """Two resources acquired in opposite orders: hold-and-wait deadlock."""
    a, b = SlotManager("a"), SlotManager("b")
    spec = MachineSpec("crossing")
    spec.state("I", initial=True)
    spec.state("HoldA")
    spec.state("HoldB")
    spec.state("Both")
    spec.edge("I", "HoldA", Condition([Allocate(a)]), label="take_a")
    spec.edge("I", "HoldB", Condition([Allocate(b)]), label="take_b")
    spec.edge("HoldA", "Both", Condition([Allocate(b, slot="b2")]), label="a_then_b")
    spec.edge("HoldB", "Both", Condition([Allocate(a, slot="a2")]), label="b_then_a")
    spec.edge("Both", "I", Condition([Release("a"), Release("b"),
                                      Release("a2"), Release("b2")]), label="retire")
    spec.validate()
    return spec, [a, b]


def livelock_machine():
    """Seeded bug: once entered, the machine spins forever holding its
    token — no path back to a home state."""
    slot = SlotManager("m")
    spec = MachineSpec("spin")
    spec.state("I", initial=True)
    spec.state("A")
    spec.edge("I", "A", Condition([Allocate(slot, slot="x")]), label="enter")
    spec.edge("A", "A", ALWAYS, label="spin")
    spec.validate()
    return spec, [slot]


class OvercommittingPool(PoolManager):
    """Buggy custom manager: reports a smaller capacity than it grants."""

    @property
    def capacity(self) -> int:
        return 1


class DoubleBookingSlot(SlotManager):
    """Buggy custom manager: grants its token even while it is held."""

    def allocate(self, osm, ident, txn):
        if txn.is_tentatively_granted(self.token):
            return None
        return self.token  # ignores self.token.holder


class TestSafetyProperties:
    def test_clean_system_is_ok(self):
        spec, managers = linear_pipeline()
        report = check_system(spec, managers, n_osms=2)
        assert report.ok
        assert not report.findings
        assert report.properties_checked == [
            "CHK001", "CHK002", "CHK003", "CHK004", "CHK005", "CHK006",
        ]

    def test_token_leak_yields_shortest_trace(self):
        spec, managers = leaky_machine()
        report = check_system(spec, managers, n_osms=2)
        assert not report.ok
        leak = report.by_code("CHK002")
        assert leak, report.render_text()
        trace = leak[0].trace
        # shortest possible counterexample: grab then drop, one OSM
        assert len(trace) == 2
        assert [step.edge.qualname for step in trace.steps] == ["grab@0", "drop@1"]
        assert "grab@0" in trace.render() and "drop@1" in trace.render()

    def test_double_allocate_yields_lost_grant(self):
        spec, managers = double_allocate_machine()
        report = check_system(spec, managers, n_osms=2)
        ghost = report.by_code("CHK006")
        assert ghost, report.render_text()
        trace = ghost[0].trace
        assert len(trace) == 2
        assert [step.edge.qualname for step in trace.steps] == ["first@0", "second@1"]
        assert "grant overwritten" in ghost[0].diagnostic.message

    def test_capacity_violation_from_buggy_manager(self):
        pool = OvercommittingPool("q", 2)
        spec = MachineSpec("over")
        spec.state("I", initial=True)
        spec.state("A")
        spec.edge("I", "A", Condition([Allocate(pool, slot="x")]), label="take")
        spec.edge("A", "I", Condition([Release("x")]), label="give")
        spec.validate()
        report = check_system(spec, [pool], n_osms=2)
        assert report.by_code("CHK003"), report.render_text()

    def test_exclusive_grant_violation_from_buggy_manager(self):
        slot = DoubleBookingSlot("s")
        spec = MachineSpec("booked")
        spec.state("I", initial=True)
        spec.state("A")
        spec.edge("I", "A", Condition([Allocate(slot, slot="x")]), label="take")
        spec.edge("A", "I", Condition([Release("x")]), label="give")
        spec.validate()
        report = check_system(spec, [slot], n_osms=2)
        assert report.by_code("CHK001"), report.render_text()


class TestLivenessProperties:
    def test_crossing_deadlock_found_with_trace(self):
        spec, managers = crossing_machine()
        report = check_system(spec, managers, n_osms=2)
        deadlock = report.by_code("CHK004")
        assert deadlock, report.render_text()
        # shortest path into the hold-and-wait configuration: two takes
        assert len(deadlock[0].trace) == 2

    def test_single_osm_cannot_deadlock_the_crossing(self):
        spec, managers = crossing_machine()
        report = check_system(spec, managers, n_osms=1)
        assert not report.by_code("CHK004")

    def test_livelock_reported_under_both_modes(self):
        for reduction in (True, False):
            spec, managers = livelock_machine()
            report = check_system(spec, managers, n_osms=2, reduction=reduction)
            stuck = report.by_code("CHK005")
            assert stuck, report.render_text()
            assert len(stuck[0].trace) == 1
            assert stuck[0].trace.steps[0].edge.qualname == "enter@0"

    def test_reduction_does_not_fake_a_livelock(self):
        # the POR ample choice prunes drain interleavings; the runner must
        # re-judge home-return exactly instead of reporting a false alarm
        pure = purify(build_spec("pipeline5"))
        report = check_system(pure.spec, pure.managers, n_osms=2, reduction=True)
        assert not report.by_code("CHK005"), report.render_text()


class TestReductions:
    SYSTEMS = [linear_pipeline, leaky_machine, double_allocate_machine,
               crossing_machine, livelock_machine]

    @pytest.mark.parametrize("build", SYSTEMS)
    @pytest.mark.parametrize("n_osms", [1, 2, 3])
    def test_reduced_verdicts_match_naive(self, build, n_osms):
        spec, managers = build()
        naive = check_system(spec, managers, n_osms=n_osms, reduction=False)
        spec, managers = build()
        reduced = check_system(spec, managers, n_osms=n_osms, reduction=True)
        assert naive.ok == reduced.ok
        assert {d.code for d in naive.diagnostics} == {
            d.code for d in reduced.diagnostics
        }

    def test_reduction_explores_fewer_states(self):
        spec, managers = linear_pipeline()
        naive = check_system(spec, managers, n_osms=3, reduction=False)
        spec, managers = linear_pipeline()
        reduced = check_system(spec, managers, n_osms=3, reduction=True)
        assert reduced.n_states < naive.n_states

    def test_reduction_factor_at_four_osms(self):
        pure = purify(build_spec("pipeline5"))
        naive = check_system(pure.spec, pure.managers, n_osms=4, reduction=False)
        reduced = check_system(pure.spec, pure.managers, n_osms=4, reduction=True)
        assert naive.ok and reduced.ok
        assert naive.n_states >= 5 * reduced.n_states

    def test_truncation_reported(self):
        spec, managers = linear_pipeline()
        report = check_system(spec, managers, n_osms=3, reduction=False,
                              max_states=4)
        assert report.truncated
        assert not report.ok


class TestAbstraction:
    def test_all_registered_specs_check_clean(self):
        for name in available_specs():
            report = check_model(name, n_osms=2)
            assert report.ok, f"{name}:\n{report.render_text()}"
            assert report.abstraction["managers"]

    def test_pure_edges_keep_original_qualnames(self):
        spec = build_spec("pipeline5")
        pure = purify(spec)
        original = {edge.qualname for edge in spec.edges}
        assert {edge.qualname for edge in pure.spec.edges} <= original

    def test_reset_guarded_edges_are_dropped(self):
        spec = build_spec("pipeline5")
        pure = purify(spec)
        assert pure.n_edges_dropped > 0
        assert pure.manager_map.get("m_reset") == "infeasible"
        assert len(pure.spec.edges) == len(spec.edges) - pure.n_edges_dropped

    def test_check_spec_reports_under_original_name(self):
        spec = build_spec("strongarm")
        report = check_spec(spec, n_osms=2)
        assert report.spec == spec.name


class TestTokenSystemState:
    def test_restore_distinguishes_same_named_managers(self):
        # regression: two managers may own identically-named tokens; the
        # old bare-name keying silently restored the wrong manager's token
        m1, m2 = SlotManager("m"), SlotManager("m")
        spec = MachineSpec("twins")
        spec.state("I", initial=True)
        spec.state("A")
        spec.state("B")
        spec.edge("I", "A", Condition([Allocate(m1, slot="x")]), label="one")
        spec.edge("A", "B", Condition([Allocate(m2, slot="y")]), label="two")
        spec.edge("B", "I", Condition([Release("x"), Release("y")]), label="out")
        spec.validate()

        system = TokenSystem(spec, [m1, m2], 1)
        state = system.initial_state()
        state = system.fire(state, 0).state  # I -> A, holds m1's token
        state = system.fire(state, 0).state  # A -> B, holds both tokens
        (_, buffer), = state
        assert {index for _, index, _ in buffer} == {0, 1}
        system.restore(state)
        assert m1.token.holder is system.osms[0]
        assert m2.token.holder is system.osms[0]
        assert system.capture() == state
        # and the whole system still checks clean
        report = check_system(spec, [m1, m2], n_osms=2)
        assert report.ok, report.render_text()

    def test_duplicate_token_names_within_one_manager_rejected(self):
        pool = PoolManager("p", 2)
        pool.tokens[1].name = pool.tokens[0].name
        spec = MachineSpec("dup")
        spec.state("I", initial=True)
        spec.state("A")
        spec.edge("I", "A", Condition([Allocate(pool)]), label="take")
        spec.edge("A", "I", Condition([Release("p")]), label="give")
        with pytest.raises(SpecError, match="two tokens named"):
            TokenSystem(spec, [pool], 2)


class TestReportRendering:
    def test_text_report_names_fired_edges(self):
        spec, managers = leaky_machine()
        text = check_system(spec, managers, n_osms=2).render_text()
        assert "CHK002" in text
        assert "counterexample" in text
        assert "grab@0" in text and "drop@1" in text

    def test_json_report_round_trips(self):
        import json

        spec, managers = leaky_machine()
        payload = json.loads(check_system(spec, managers, n_osms=2).render_json())
        assert payload["ok"] is False
        codes = [finding["code"] for finding in payload["findings"]]
        assert "CHK002" in codes
        finding = next(f for f in payload["findings"] if f["code"] == "CHK002")
        assert finding["trace"]["length"] == 2
        assert finding["trace"]["steps"][0]["edge"] == "grab@0"

    def test_property_filter_rejects_unknown_codes(self):
        spec, managers = linear_pipeline()
        with pytest.raises(ValueError, match="unknown property code"):
            check_system(spec, managers, codes=["CHK042"])

    def test_property_filter_restricts_findings(self):
        spec, managers = leaky_machine()
        report = check_system(spec, managers, n_osms=2, codes=["CHK001"])
        assert report.properties_checked == ["CHK001"]
        assert report.ok  # the leak is a CHK002/CHK005 matter
