"""Tests for the ``repro check`` CLI subcommand: exit codes, JSON schema,
property filtering and error handling."""

import json

import pytest

from repro.analysis.registry import _REGISTRY, register_spec
from repro.cli import main
from repro.core import ALWAYS, Allocate, Condition, MachineSpec, SlotManager


@pytest.fixture()
def leaky_spec_registered():
    """Temporarily register a spec whose retire edge forgot its Release."""

    def build():
        a = SlotManager("A")
        spec = MachineSpec("leaky")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]), label="grab")
        spec.edge("P", "I", ALWAYS, label="retire")
        return spec

    register_spec("leaky", build)
    yield "leaky"
    del _REGISTRY["leaky"]


class TestCheckCli:
    def test_clean_models_exit_zero(self, capsys):
        assert main(["check", "strongarm", "ppc750"]) == 0
        out = capsys.readouterr().out
        assert "strongarm: ok" in out
        assert "ppc750: ok" in out

    def test_all_alias_checks_every_registered_spec(self, capsys):
        assert main(["check", "all"]) == 0
        out = capsys.readouterr().out
        for name in ("pipeline5", "strongarm", "vliw", "multithread",
                     "ppc750", "adl-pipeline5", "adl-strongarm"):
            assert f"{name}: ok" in out

    def test_violations_exit_nonzero_with_trace(self, leaky_spec_registered, capsys):
        assert main(["check", leaky_spec_registered]) == 1
        out = capsys.readouterr().out
        assert "CHK002" in out
        assert "counterexample" in out
        assert "grab@0" in out and "retire@1" in out

    def test_json_output_schema(self, leaky_spec_registered, capsys):
        assert main(["check", "pipeline5", leaky_spec_registered, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert set(payload["models"]) == {"pipeline5", "leaky"}
        assert payload["models"]["pipeline5"]["ok"] is True
        leaky = payload["models"]["leaky"]
        assert leaky["ok"] is False
        codes = [finding["code"] for finding in leaky["findings"]]
        assert "CHK002" in codes
        finding = next(f for f in leaky["findings"] if f["code"] == "CHK002")
        assert finding["spec"] == "leaky"
        assert finding["trace"]["steps"][-1]["edge"] == "retire@1"
        assert leaky["abstraction"]["managers"]["A"] == "slot"

    def test_n_osms_flag(self, capsys):
        assert main(["check", "pipeline5", "--n-osms", "3"]) == 0
        assert "3 OSMs" in capsys.readouterr().out

    def test_naive_flag(self, capsys):
        assert main(["check", "pipeline5", "--naive"]) == 0
        assert "(naive)" in capsys.readouterr().out

    def test_properties_filter(self, leaky_spec_registered, capsys):
        # the leak is a CHK002/CHK005 matter; filtering to CHK001 hides it
        assert main(["check", leaky_spec_registered, "--properties", "CHK001"]) == 0
        assert "1 properties" in capsys.readouterr().out

    def test_unknown_property_code_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="CHK999"):
            main(["check", "pipeline5", "--properties", "CHK999"])

    def test_unknown_model_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="available"):
            main(["check", "nonesuch"])
