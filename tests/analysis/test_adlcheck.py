"""adlcheck rule tests: a mutation harness over the bundled descriptions.

Every rule ADL001–ADL010 (plus the ADL000 syntax report) must fire on a
minimally-mutated copy of the clean pipeline5 description, with the
finding located at the mutated source line; and the bundled descriptions
themselves must check completely clean with zero suppressions.
"""

import pytest

from repro.adl.synth import PIPELINE5_ADL
from repro.analysis.adl import (
    adlcheck_source,
    available_descriptions,
    description_source,
)
from repro.analysis.diagnostics import Severity


def run(text, unit="mut", synth_closure=False, **kw):
    return adlcheck_source(text, unit=unit, synth_closure=synth_closure, **kw)


def active_codes(report):
    return {d.code for d in report.active}


class TestCleanDescriptions:
    @pytest.mark.parametrize("name", ["adl-pipeline5", "adl-strongarm"])
    def test_bundled_descriptions_check_clean(self, name):
        report = run(description_source(name), unit=name, synth_closure=True)
        assert report.ok
        assert not report.diagnostics, [d.render() for d in report.diagnostics]
        assert not any(d.suppressed for d in report.diagnostics)
        assert report.passes_run == [f"ADL{i:03d}" for i in range(1, 11)]

    def test_registry_names(self):
        assert available_descriptions() == ["adl-pipeline5", "adl-strongarm"]
        with pytest.raises(KeyError, match="unknown description"):
            description_source("adl-ghost")


class TestSyntaxReport:
    def test_parse_failure_becomes_located_adl000(self):
        report = run(PIPELINE5_ADL.replace("machine op {", "machine op"))
        assert not report.ok
        (diag,) = report.diagnostics
        assert diag.code == "ADL000"
        assert diag.rule == "syntax"
        assert diag.source_span is not None
        assert diag.source_span.unit == "mut"

    def test_truncated_description_points_at_tail(self):
        report = run("processor p {\n    machine op {")
        (diag,) = report.diagnostics
        assert diag.code == "ADL000"
        assert diag.source_span.line == 2


#: (rule code, mutation of the clean pipeline5 text, message fragment,
#: line the finding must be anchored to)
MUTATIONS = [
    ("ADL001",
     PIPELINE5_ADL.replace("allocate m_d;", "allocate m_dd;"),
     "undeclared manager 'm_dd'", 21),
    ("ADL001",
     PIPELINE5_ADL.replace("action fetch", "action teleport"),
     "unknown action 'teleport'", 20),
    ("ADL002",
     PIPELINE5_ADL.replace("    manager m_d kind stage",
                           "    manager m_d kind stage\n"
                           "    manager m_d kind stage"),
     "duplicate manager 'm_d'", 6),
    ("ADL003",
     PIPELINE5_ADL.replace("edge B -> W", "edge B -> Q"),
     "undeclared state 'Q'", 25),
    ("ADL004",
     PIPELINE5_ADL.replace("state I initial", "state I"),
     "no initial state", 12),
    ("ADL004",
     PIPELINE5_ADL.replace("        state F", "        state F initial"),
     "second initial state", 14),
    ("ADL005",
     PIPELINE5_ADL.replace("inquire m_r sources", "inquire m_r srcs"),
     "unknown identifier word 'srcs'", 22),
    ("ADL005",
     PIPELINE5_ADL.replace("allocate_many m_r dests as rupd",
                           "allocate_many m_r as rupd"),
     "needs an identifier", 23),
    ("ADL006",
     PIPELINE5_ADL.replace("allocate_many m_r dests", "allocate_many m_e dests"),
     "capacity-1 stage manager", 23),
    ("ADL007",
     PIPELINE5_ADL.replace("release m_w; release_many rupd", "release m_w"),
     "still held", 26),
    ("ADL008",
     PIPELINE5_ADL.replace(
         "        edge F -> D { allocate m_d; release m_f }",
         "        edge F -> D { }\n"
         "        edge F -> D { allocate m_d; release m_f }"),
     "always-enabled edge", 22),
    ("ADL009",
     PIPELINE5_ADL.replace("param osms 7", "param osms 7\n    param width 2"),
     "param 'width'", 4),
]


class TestMutationHarness:
    @pytest.mark.parametrize(
        "code,text,fragment,line",
        MUTATIONS, ids=[f"{c}-{f[:20]}" for c, _, f, _ in MUTATIONS],
    )
    def test_rule_fires_at_mutated_line(self, code, text, fragment, line):
        report = run(text)
        found = [d for d in report.active if d.code == code and fragment in d.message]
        assert found, (
            f"{code} did not fire; got "
            f"{[d.render() for d in report.diagnostics]}"
        )
        spans = [d.source_span for d in found if d.source_span is not None]
        assert spans, f"{code} finding carries no source span"
        assert any(s.line == line for s in spans), (
            f"expected line {line}, got {[s.line for s in spans]}"
        )

    def test_unreachable_state_reported(self):
        text = PIPELINE5_ADL.replace(
            "        state W", "        state W\n        state X")
        report = run(text)
        found = [d for d in report.active if d.code == "ADL004"]
        assert any("unreachable" in d.message and d.state == "X" for d in found)

    def test_token_balance_unheld_release(self):
        text = PIPELINE5_ADL.replace(
            "edge B -> W { allocate m_w; release m_b }",
            "edge B -> W { allocate m_w; release m_b; release m_d }")
        report = run(text)
        found = [d for d in report.active if d.code == "ADL007"]
        assert any("no path into this edge allocates" in d.message for d in found)

    def test_ambiguous_sibling_priorities(self):
        text = PIPELINE5_ADL.replace(
            "        edge F -> D { allocate m_d; release m_f }",
            "        edge F -> D { allocate m_d; release m_f }\n"
            "        edge F -> D { allocate m_d; release m_f }")
        report = run(text)
        found = [d for d in report.active if d.code == "ADL008"]
        assert any("ambiguous" in d.message for d in found)
        assert all(d.severity is Severity.WARNING for d in found)

    def test_unused_manager_warned(self):
        text = PIPELINE5_ADL.replace(
            "    manager m_reset kind reset",
            "    manager m_reset kind reset\n    manager m_spare kind stage")
        report = run(text)
        found = [d for d in report.active if d.code == "ADL009"]
        assert any("never referenced" in d.message for d in found)

    def test_nonpositive_pool_size(self):
        report = run("""
processor p {
    manager pool kind pool size 0
    machine op {
        state I initial
        state S
        edge I -> S { allocate pool }
        edge S -> I { release pool }
    }
}
""")
        assert "ADL006" in active_codes(report)


class TestRuleFilter:
    def test_codes_restrict_passes(self):
        text = PIPELINE5_ADL.replace("allocate m_d;", "allocate m_dd;")
        report = run(text, codes=["ADL002"])
        assert report.passes_run == ["ADL002"]
        assert report.ok  # the ADL001 defect is not checked

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown adlcheck rule"):
            run(PIPELINE5_ADL, codes=["ADL999"])


class TestSuppression:
    def test_processor_level_allow(self):
        text = PIPELINE5_ADL.replace(
            "    param osms 7",
            "    param osms 7\n    param width 2\n    allow ADL009")
        report = run(text)
        assert report.ok
        suppressed = [d for d in report.diagnostics if d.suppressed]
        assert any(d.code == "ADL009" for d in suppressed)

    def test_edge_level_allow(self):
        text = PIPELINE5_ADL.replace(
            "edge W -> I { release m_w; release_many rupd } action retire",
            "edge W -> I { release m_w } action retire allow ADL007")
        report = run(text)
        assert report.ok
        suppressed = [d for d in report.diagnostics if d.suppressed]
        assert any(d.code == "ADL007" and d.edge == "W->I@5" for d in suppressed)

    def test_edge_level_allow_is_edge_scoped(self):
        # the allow sits on a different edge: the finding stays active
        text = PIPELINE5_ADL.replace(
            "edge W -> I { release m_w; release_many rupd } action retire",
            "edge W -> I { release m_w } action retire",
        ).replace(
            "edge I -> F { allocate m_f } action fetch",
            "edge I -> F { allocate m_f } action fetch allow ADL007")
        report = run(text)
        assert not report.ok
        assert any(d.code == "ADL007" for d in report.active)


class TestSynthClosure:
    #: invisible to the source-level rules (every reference resolves,
    #: tokens balance) but deadlocks the synthesized machine: retire
    #: now also requires the reset manager's token
    DEADLOCK = PIPELINE5_ADL.replace(
        "edge W -> I { release m_w; release_many rupd } action retire",
        "edge W -> I { inquire m_reset; release m_w; release_many rupd } "
        "action retire")

    def test_source_rules_miss_the_defect(self):
        report = run(self.DEADLOCK, synth_closure=False)
        assert report.ok

    def test_closure_finds_it_with_adl_source_span(self):
        report = run(self.DEADLOCK, unit="dead.adl", synth_closure=True)
        assert not report.ok
        found = [d for d in report.active if d.code == "ADL010"]
        assert found
        assert all(d.rule == "synth-closure" for d in found)
        # downstream tool and code preserved in the message
        assert any("[check:CHK" in d.message for d in found)
        # and the span points back into the *description*, in the
        # checked unit's name, at a real ADL line
        spanned = [d for d in found if d.source_span is not None]
        assert spanned
        assert all(d.source_span.unit == "dead.adl" for d in spanned)
        assert all(13 <= d.source_span.line <= 28 for d in spanned)

    def test_processor_allow_suppresses_closure_findings(self):
        text = self.DEADLOCK.replace(
            "    param osms 7", "    param osms 7\n    allow ADL010")
        report = run(text, synth_closure=True)
        assert report.ok
        assert any(d.suppressed and d.code == "ADL010"
                   for d in report.diagnostics)

    def test_unsynthesizable_description_reports_adl010(self):
        # no fetch manager: ADL001-009 cannot prove it, synthesis raises
        report = run("""
processor p {
    manager m_reset kind reset
    machine op {
        state I initial
        state S
        edge I -> S { allocate m_reset }
        edge S -> I { release m_reset }
    }
}
""", synth_closure=True)
        found = [d for d in report.active if d.code == "ADL010"]
        assert any("does not synthesize" in d.message for d in found)
