"""Tests for the isaaudit cross-layer consistency analyzer (ISA001–ISA008).

Every rule code gets at least one triggering case on a deliberately
broken toy ISA (built through the same :func:`register_target` hook
downstream ISAs use), naming the offending instruction class or decoder
arm.  The triage tests pin that both bundled ISAs and every registered
model spec audit clean — the cross-layer contract the issue fixes.
"""

import pytest

from repro.analysis.audit import (
    AuditTarget,
    DecoderArm,
    EncodingClass,
    OverflowCase,
    audit_isa,
    audit_model,
    audit_routing,
    audit_target,
    available_targets,
    build_target,
    register_target,
)
from repro.analysis.diagnostics import Severity
from repro.analysis.registry import available_specs
from repro.core import ALWAYS, Condition, Guard, MachineSpec
from repro.iss.state import ShadowArchState


# -- a deliberately broken toy ISA ------------------------------------------
#
# Word layout: top byte selects the class.
#   0x01BBBBRB  "add"   r2 <- r1 + r[rb]   (rb in the low byte)
#   0x04_000_II "rot"   imm in the low byte; the decoder DROPS its low
#                       four bits, breaking the round-trip fixpoint
#   anything else       "udf"
#
# Seeded inconsistencies, one per rule:
#   ISA001  arms "add" and "add-dup" share the exact same pattern
#   ISA002  "add-dup" is fully shadowed by "add" under decode order
#   ISA003  "rot" decode loses imm bits -> re-encode differs
#   ISA004  "add" semantics read r[rb] and write r3; metadata says
#           src=(1,), dst=(2,) only
#   ISA005  "add" metadata declares phantom src r3 (never read) and
#           is_store (never stores)
#   ISA006  class "emit-udf" emits a word only the catch-all matches
#   ISA007  the toy encoder accepts rb=16 without raising


class _ToyInstr:
    def __init__(self, kind, **kw):
        self.kind = kind
        self.mnemonic = kind
        self.text = kind
        self.unit = kw.pop("unit", "alu")
        self.src_regs = kw.pop("src_regs", ())
        self.dst_regs = kw.pop("dst_regs", ())
        self.is_load = kw.pop("is_load", False)
        self.is_store = kw.pop("is_store", False)
        self.writes_pc = kw.pop("writes_pc", False)
        for name, value in kw.items():
            setattr(self, name, value)


class _ToyInfo:
    def __init__(self, next_pc):
        self.next_pc = next_pc


def _toy_decode(addr, word):
    top = (word >> 24) & 0xFF
    if top == 0x01:
        return _ToyInstr(
            "add", rb=word & 0xFF,
            # ISA004: really reads r[rb] and writes r3 too
            # ISA005: r3 as a source is phantom; is_store never stores
            src_regs=(1, 3), dst_regs=(2,), is_store=True,
        )
    if top == 0x04:
        return _ToyInstr("rot", imm=word & 0xF0)  # ISA003: drops low bits
    return _ToyInstr("udf")


def _toy_execute(state, instr):
    if instr.kind == "add":
        total = state.regs.read(1) + state.regs.read(instr.rb)
        state.regs.write(2, total & 0xFFFFFFFF)
        state.regs.write(3, 0)  # undeclared write
    elif instr.kind == "rot":
        state.regs.write(2, instr.imm)
    else:
        raise ValueError("udf")
    return _ToyInfo(next_pc=state.pc + 4)


def _toy_encode_add(rb):
    # ISA007: no range check; rb=16 silently overflows into bits 8+
    return 0x01000000 | rb


def _build_toy() -> AuditTarget:
    return AuditTarget(
        name="toy",
        decode=_toy_decode,
        execute=_toy_execute,
        make_state=lambda: ShadowArchState(8),
        pc_reg=None,
        flag_regs={},
        spr_regs={},
        udf_kinds=frozenset({"udf"}),
        units=frozenset({"alu"}),
        arms=[
            DecoderArm("add", 0xFF000000, 0x01000000, "add"),
            DecoderArm("add-dup", 0xFF000000, 0x01000000, "add"),
            DecoderArm("rot", 0xFF000000, 0x04000000, "rot"),
            DecoderArm("toy-udf", 0x00000000, 0x00000000, "udf",
                       catch_all=True),
        ],
        classes=[
            EncodingClass(
                "add",
                {"rb": (4, 5)},
                lambda p: _toy_encode_add(p["rb"]),
                reencode=lambda i: _toy_encode_add(i.rb),
            ),
            EncodingClass(
                "rot",
                {"imm": (0x15,)},
                lambda p: 0x04000000 | p["imm"],
                reencode=lambda i: 0x04000000 | i.imm,
            ),
            EncodingClass(
                "emit-udf",
                {"x": (0,)},
                lambda p: 0x7F000000,
            ),
        ],
        overflows=[
            OverflowCase("add-rb-overflow", lambda: _toy_encode_add(16)),
        ],
    )


@pytest.fixture()
def toy_report():
    register_target("toy", _build_toy)
    try:
        yield audit_target(build_target("toy"))
    finally:
        from repro.analysis.audit.targets import _TARGETS

        _TARGETS.pop("toy", None)


def _codes(report, code):
    return [d for d in report.diagnostics if d.code == code]


class TestToyFindings:
    def test_isa001_overlapping_arms(self, toy_report):
        hits = _codes(toy_report, "ISA001")
        assert hits and hits[0].state == "add"
        assert "add-dup" in hits[0].message

    def test_isa002_shadowed_arm(self, toy_report):
        hits = _codes(toy_report, "ISA002")
        assert any(d.state == "add-dup" and "unreachable" in d.message
                   for d in hits)

    def test_isa003_roundtrip_broken(self, toy_report):
        hits = _codes(toy_report, "ISA003")
        assert hits and hits[0].state == "rot"
        assert "0x04000015" in hits[0].message
        assert "0x04000010" in hits[0].message

    def test_isa004_under_declared(self, toy_report):
        messages = [d.message for d in _codes(toy_report, "ISA004")]
        assert any("writes r3" in m for m in messages)
        assert any("reads r4" in m or "reads r5" in m for m in messages)

    def test_isa005_over_declared(self, toy_report):
        hits = _codes(toy_report, "ISA005")
        assert all(d.severity is Severity.WARNING for d in hits)
        messages = [d.message for d in hits]
        assert any("declares r3" in m and "never read" in m
                   for m in messages)
        assert any("is_store" in m for m in messages)

    def test_isa006_emittable_udf(self, toy_report):
        hits = _codes(toy_report, "ISA006")
        assert hits and hits[0].state == "emit-udf"
        assert "0x7f000000" in hits[0].message

    def test_isa007_encoder_overflow(self, toy_report):
        hits = _codes(toy_report, "ISA007")
        assert hits and hits[0].state == "add-rb-overflow"

    def test_toy_fails_overall(self, toy_report):
        assert not toy_report.ok
        assert toy_report.tool == "audit"


class TestSuppressionAndFilters:
    def test_class_level_allow_suppresses(self):
        target = _build_toy()
        target.classes[1].allow = frozenset({"ISA003"})
        report = audit_target(target)
        hits = [d for d in report.diagnostics if d.code == "ISA003"]
        assert hits and all(d.suppressed for d in hits)

    def test_target_level_allow_suppresses(self):
        target = _build_toy()
        target.allow = frozenset({"ISA001", "ISA002"})
        report = audit_target(target)
        for code in ("ISA001", "ISA002"):
            hits = [d for d in report.diagnostics if d.code == code]
            assert hits and all(d.suppressed for d in hits)

    def test_code_filter_runs_only_requested(self):
        report = audit_target(_build_toy(), codes=["ISA003"])
        assert report.passes_run == ["ISA003"]
        assert {d.code for d in report.diagnostics} == {"ISA003"}

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="ISA999"):
            audit_target(_build_toy(), codes=["ISA999"])


# -- ISA008: unit routing ---------------------------------------------------

def _routing_spec(guarded_unit="alu"):
    spec = MachineSpec("toy-route")
    spec.state("I", initial=True)
    spec.state("X")
    spec.edge("I", "X", Condition([
        Guard(lambda osm: osm.operation.instr.unit == guarded_unit, "route"),
    ]))
    spec.edge("X", "I", ALWAYS)
    return spec


class TestRouting:
    def test_isa008_unroutable_unit(self):
        spec = _routing_spec()
        diags = list(audit_routing(spec, {"alu", "mem"}))
        assert len(diags) == 1
        assert diags[0].code == "ISA008"
        assert diags[0].state == "mem"
        assert "cannot complete a pipeline traversal" in diags[0].message

    def test_isa008_all_units_route(self):
        spec = _routing_spec()
        assert list(audit_routing(spec, {"alu"})) == []

    def test_raising_guard_is_non_discriminating(self):
        spec = MachineSpec("raisy")
        spec.state("I", initial=True)
        spec.edge("I", "I", Condition([
            Guard(lambda osm: osm.no_such_attribute, "opaque"),
        ]))
        assert list(audit_routing(spec, {"alu"})) == []

    def test_registered_specs_route_all_units(self):
        for name in available_specs():
            report = audit_model(name)
            assert report.ok, f"{name}: {report.render_text()}"
            assert report.passes_run == ["ISA008"]


# -- triage: the bundled ISAs are audit-clean -------------------------------

class TestBundledTargets:
    def test_targets_registered(self):
        assert set(available_targets()) >= {"arm", "ppc"}

    @pytest.mark.parametrize("name", ["arm", "ppc"])
    def test_bundled_isa_audits_clean(self, name):
        report = audit_isa(name)
        assert report.ok, report.render_text(show_suppressed=True)
        assert len(report.passes_run) == 7

    @pytest.mark.parametrize("name", ["arm", "ppc"])
    def test_mutated_metadata_is_caught(self, name):
        """Dropping a declared source from every decoded instruction must
        surface as ISA004 — the audit is live, not vacuous."""
        target = build_target(name)
        real_decode = target.decode

        def lobotomized(addr, word):
            instr = real_decode(addr, word)
            if instr.src_regs:
                instr.src_regs = instr.src_regs[1:]
            return instr

        target.decode = lobotomized
        report = audit_target(target, codes=["ISA004"])
        assert not report.ok
        assert any(d.code == "ISA004" for d in report.diagnostics)
