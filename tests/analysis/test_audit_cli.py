"""Tests for the ``repro audit`` CLI subcommand: exit codes, JSON schema,
subject dispatch (ISA target vs. model spec), and rule filtering."""

import json

import pytest

from repro.analysis.audit import AuditTarget, EncodingClass, register_target
from repro.analysis.audit.targets import _TARGETS
from repro.cli import main
from repro.iss.state import ShadowArchState


class _Instr:
    kind = "nop"
    mnemonic = "nop"
    text = "nop"
    unit = "alu"
    src_regs = ()
    dst_regs = ()
    is_load = False
    is_store = False
    writes_pc = True  # never redirects -> guaranteed ISA005 warning


class _Info:
    def __init__(self, next_pc):
        self.next_pc = next_pc


@pytest.fixture()
def broken_target_registered():
    """Temporarily register a target with a guaranteed ISA003 error (the
    re-encoder flips a bit) and an ISA005 warning."""

    def build():
        return AuditTarget(
            name="cli-broken",
            decode=lambda addr, word: _Instr(),
            execute=lambda state, instr: _Info(state.pc + 4),
            make_state=lambda: ShadowArchState(4),
            pc_reg=None,
            flag_regs={},
            spr_regs={},
            udf_kinds=frozenset({"udf"}),
            units=frozenset({"alu"}),
            classes=[
                EncodingClass(
                    "nop", {"x": (0,)},
                    lambda p: 0x60000000,
                    reencode=lambda i: 0x60000001,
                ),
            ],
        )

    register_target("cli-broken", build)
    yield "cli-broken"
    _TARGETS.pop("cli-broken", None)


class TestAuditCli:
    def test_clean_subjects_exit_zero(self, capsys):
        assert main(["audit", "arm", "ppc", "pipeline5"]) == 0
        out = capsys.readouterr().out
        assert "arm: 0 error(s)" in out
        assert "ppc: 0 error(s)" in out
        assert "pipeline5: 0 error(s)" in out

    def test_all_covers_isas_and_specs(self, capsys):
        assert main(["audit", "all"]) == 0
        out = capsys.readouterr().out
        for name in ("arm", "ppc", "pipeline5", "strongarm", "vliw",
                     "multithread", "ppc750", "adl-pipeline5",
                     "adl-strongarm"):
            assert f"{name}:" in out

    def test_error_findings_exit_nonzero(self, broken_target_registered, capsys):
        assert main(["audit", broken_target_registered]) == 1
        out = capsys.readouterr().out
        assert "ISA003" in out and "error" in out

    def test_json_output_schema(self, broken_target_registered, capsys):
        assert main(["audit", "arm", broken_target_registered, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "audit"
        assert payload["schema_version"] >= 2
        assert payload["ok"] is False
        assert set(payload["subjects"]) == {"arm", "cli-broken"}
        assert payload["subjects"]["arm"]["ok"] is True
        broken = payload["subjects"]["cli-broken"]
        assert broken["ok"] is False
        assert any(d["code"] == "ISA003" for d in broken["diagnostics"])
        assert any(d["code"] == "ISA005" for d in broken["diagnostics"])

    def test_rules_filter_splits_by_subject_kind(self, capsys):
        # ISA008 only runs on specs, ISA003 only on ISA targets; a mixed
        # filter must not error on either subject kind.
        assert main(["audit", "arm", "pipeline5", "--rules",
                     "ISA003,ISA008", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subjects"]["arm"]["passes"] == ["ISA003"]
        assert payload["subjects"]["pipeline5"]["passes"] == ["ISA008"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(SystemExit, match="ISA999"):
            main(["audit", "arm", "--rules", "ISA999"])

    def test_unknown_subject_rejected(self):
        with pytest.raises(SystemExit, match="no-such-subject"):
            main(["audit", "no-such-subject"])
