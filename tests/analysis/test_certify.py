"""transcheck (``repro certify``) — translation validation of generated
fast-path code.

Three layers of coverage:

* **Clean certification**: every registered spec and both ISA targets
  certify with zero errors — the generated fused steppers, compiled
  probes, execgen closures and ISS blocks all agree with their reference
  sources.
* **Mutation harness**: each rule TRV001–TRV008 (and the build-time
  gate) demonstrably *fires* when the corresponding generator output is
  corrupted.  A validator that never fails validates nothing.
* **Demotion plumbing**: a TRV-failing state is demoted by
  ``apply_compilability`` with the fallback counted in ``CompileStats``
  (the counters the bench JSON row reports).
"""

import pytest

from repro.analysis.audit.targets import available_targets
from repro.analysis.certify import (
    ISA_CODES,
    SPEC_CODES,
    certify_fused_states,
    certify_isa,
    certify_spec,
    generator_fingerprint,
)
from repro.analysis.certify.engine import (
    Trv002InlineContract,
    Trv004ExecgenWriteSet,
    Trv005BlockStoreGuards,
    Trv006PageMapCoverage,
)
from repro.analysis.registry import available_specs, build_spec
from repro.core import edgecompile, fuse
from repro.core.edgecompile import apply_compilability
from repro.models.pipeline5 import model as p5model


def _errors(report, code=None):
    return [
        d for d in report.diagnostics
        if d.severity.value == "error" and not d.suppressed
        and (code is None or d.code == code)
    ]


def _warnings(report, code=None):
    return [
        d for d in report.diagnostics
        if d.severity.value == "warning" and (code is None or d.code == code)
    ]


def _fused_state(spec):
    state = next(
        (s for s in spec.states.values() if s._fused is not None), None)
    assert state is not None, f"{spec.name}: no fused state to corrupt"
    return state


# -- clean certification ------------------------------------------------------

@pytest.mark.parametrize("name", available_specs())
def test_every_spec_certifies_clean(name):
    report = certify_spec(build_spec(name))
    assert list(report.passes_run) == list(SPEC_CODES)
    assert report.ok, report.render_text()
    assert not _errors(report)


@pytest.mark.parametrize("target", available_targets())
def test_every_isa_certifies_clean(target):
    report = certify_isa(target)
    assert list(report.passes_run) == list(ISA_CODES)
    assert report.ok, report.render_text()
    assert not _errors(report)


# -- mutation harness: every rule must fire on corrupted output ---------------

class TestSpecRuleMutations:
    def test_trv001_fires_on_corrupted_fused_source(self):
        spec = build_spec("pipeline5")
        state = _fused_state(spec)
        source = state._fused.__fused_source__
        state._fused.__fused_source__ = source.replace(
            "osm.n_transitions += 1", "pass", 1)
        report = certify_spec(spec, codes=["TRV001"])
        found = _errors(report, "TRV001")
        assert found, report.render_text()
        assert state.name in {d.state for d in found}

    def test_trv001_fires_on_missing_source_hook(self):
        spec = build_spec("pipeline5")
        state = _fused_state(spec)
        state._fused.__fused_source__ = None
        found = _errors(certify_spec(spec, codes=["TRV001"]), "TRV001")
        assert found and "__fused_source__" in found[0].message

    def test_trv002_fires_on_diverging_inline_tag(self):
        spec = build_spec("pipeline5")
        original = p5model._source_regs.__fuse_inline__
        p5model._source_regs.__fuse_inline__ = "osm.operation.instr.dst_regs"
        try:
            found = _errors(certify_spec(spec, codes=["TRV002"]), "TRV002")
        finally:
            p5model._source_regs.__fuse_inline__ = original
        assert found and "diverges" in found[0].message

    def test_trv003_fires_on_corrupted_probe_source(self, monkeypatch):
        spec = build_spec("pipeline5")
        real = edgecompile.compile_edge_probe

        def corrupted(edge, spec=None):
            probe = real(edge, spec)
            source = getattr(probe, "__probe_source__", None)
            if source is not None and "txn.grants.append" in source:
                probe.__probe_source__ = source.replace(
                    "txn.grants.append((a0_slot, token))", "pass", 1)
            return probe

        monkeypatch.setattr(edgecompile, "compile_edge_probe", corrupted)
        found = _errors(certify_spec(spec, codes=["TRV003"]), "TRV003")
        assert found, "TRV003 must fire when a compiled probe drops a grant"
        assert "diverges from the primitive plan" in found[0].message

    def test_trv007_fires_on_census_drift(self):
        spec = build_spec("pipeline5")
        state = _fused_state(spec)
        # drop the stepper without updating the compile census
        state._fused = None
        found = _errors(certify_spec(spec, codes=["TRV007"]), "TRV007")
        assert found and state.name in {d.state for d in found}

    def test_trv008_fires_on_stale_generator_fingerprint(self):
        spec = build_spec("pipeline5")
        assert spec.fuse_certificate is not None
        spec.fuse_certificate = dict(
            spec.fuse_certificate, generator="deadbeef")
        found = _errors(certify_spec(spec, codes=["TRV008"]), "TRV008")
        assert found and "stale fuse certificate" in found[0].message

    def test_trv008_fires_on_missing_certificate(self):
        spec = build_spec("pipeline5")
        _fused_state(spec)
        spec.fuse_certificate = None
        found = _errors(certify_spec(spec, codes=["TRV008"]), "TRV008")
        assert found and "no fuse certificate" in found[0].message

    def test_trv008_fires_on_stamped_state_drift(self):
        spec = build_spec("pipeline5")
        state = _fused_state(spec)
        stamped = [n for n in spec.fuse_certificate["fused_states"]
                   if n != state.name]
        spec.fuse_certificate = dict(
            spec.fuse_certificate, fused_states=stamped)
        found = _errors(certify_spec(spec, codes=["TRV008"]), "TRV008")
        assert found and "certificate covers states" in found[0].message


class TestIsaRuleMutations:
    def test_trv004_fires_on_dropped_flag_writes(self):
        from repro.isa.arm.execgen import _translate

        def dropped_flags(instr, name):
            source = _translate(instr, name)
            if source is None:
                return None
            # structure-preserving rename: the executor still parses but
            # its static write set loses every flag
            return source.replace("state.flag_", "_shadow_flag_")

        report = certify_isa(
            "arm", passes=[Trv004ExecgenWriteSet(translate=dropped_flags)])
        found = _errors(report, "TRV004")
        assert found, "TRV004 must fire when the executor drops flag writes"
        assert "never writes" in found[0].message

    def test_trv005_fires_on_stripped_store_guards(self, arm_iss):
        def strip_guards(source):
            out, skip_indent = [], None
            for line in source.splitlines():
                stripped = line.strip()
                indent = len(line) - len(line.lstrip())
                if skip_indent is not None:
                    if stripped and indent > skip_indent:
                        continue
                    skip_indent = None
                if "_b.valid" in stripped:
                    skip_indent = indent
                    continue
                out.append(line)
            return "\n".join(out)

        report = certify_isa(
            "arm",
            passes=[Trv005BlockStoreGuards(
                interpreter=arm_iss, mutate=strip_guards)])
        found = _errors(report, "TRV005")
        assert found, "TRV005 must fire when store guards are stripped"

    def test_trv005_fires_on_missing_block_source(self, arm_iss):
        entry, block = next(iter(arm_iss.decode_cache.blocks.items()))
        saved = block.compiled.__block_source__
        block.compiled.__block_source__ = None
        try:
            report = certify_isa(
                "arm", passes=[Trv005BlockStoreGuards(interpreter=arm_iss)])
        finally:
            block.compiled.__block_source__ = saved
        found = _errors(report, "TRV005")
        assert found and "__block_source__" in found[0].message

    def test_trv006_fires_on_dropped_page_entry(self, arm_iss):
        cache = arm_iss.decode_cache
        page = next(iter(cache._block_pages))
        saved = cache._block_pages.pop(page)
        try:
            report = certify_isa(
                "arm", passes=[Trv006PageMapCoverage(decode_cache=cache)])
        finally:
            cache._block_pages[page] = saved
        assert _errors(report, "TRV006"), report.render_text()


@pytest.fixture(scope="module")
def arm_iss():
    from repro.analysis.certify.isachecks import run_arm_driver
    return run_arm_driver()


# -- the build-time gate ------------------------------------------------------

class TestBuildGate:
    def test_gate_reports_corrupted_stepper(self):
        spec = build_spec("pipeline5")
        assert certify_fused_states(spec) == []
        state = _fused_state(spec)
        source = state._fused.__fused_source__
        state._fused.__fused_source__ = source.replace(
            "osm.n_transitions += 1", "pass", 1)
        failures = certify_fused_states(spec)
        assert [name for name, _ in failures] == [state.name]

    def test_corrupted_generator_demotes_at_model_build(self, monkeypatch):
        """End to end: a generator emitting uncertifiable code loses the
        fused stepper at ``enable_fusion`` time, and the demotion is
        counted as a ``certify:`` fallback in the compile stats (the
        counters the bench JSON row carries)."""
        from repro.isa.arm import assemble
        from repro.models.pipeline5 import Pipeline5Model

        real = fuse.generate_stepper

        def corrupted(state, spec):
            stepper = real(state, spec)
            stepper.__fused_source__ = stepper.__fused_source__.replace(
                "osm.n_transitions += 1", "pass", 1)
            return stepper

        program = assemble("""
    .text
_start:
    mov r0, #0
    swi #0
""")
        with monkeypatch.context() as patch:
            patch.setattr(fuse, "generate_stepper", corrupted)
            fuse._TRV_CACHE.clear()
            try:
                model = Pipeline5Model(program, fused=True)
                stats = model.spec.compile_stats
                assert stats.fused_states == 0
                assert stats.fused_fallback_states > 0
                reasons = [r for r in stats.states.values() if r is not None]
                assert reasons and all(
                    r.startswith("certify:") for r in reasons)
            finally:
                fuse._TRV_CACHE.clear()

        # a healthy rebuild recovers full fusion
        model = Pipeline5Model(program, fused=True)
        assert model.spec.compile_stats.fused_fallback_states == 0


class TestDemotionPlumbing:
    def test_apply_compilability_consumes_trv_verdicts(self):
        class _Verdict:
            unsafe_edges = ()

            def __init__(self, states):
                self.uncertified_states = states

        spec = build_spec("pipeline5")
        state = _fused_state(spec)
        before = spec.compile_stats.fused_states
        changed = apply_compilability(
            spec, _Verdict([(state.name, "stepper does not replay")]))
        stats = spec.compile_stats
        assert changed == 1
        assert state._fused is None
        assert stats.states[state.name] == "certify: stepper does not replay"
        assert stats.fused_states == before - 1
        assert stats.fused_fallback_states == 1
        assert (state.name, "certify: stepper does not replay") \
            in stats.fallback_states
        # the counters the bench row publishes survive serialization
        payload = stats.to_dict()
        assert payload["fused_states"] == before - 1
        assert payload["fused_fallback_states"] == 1


# -- satellite: fused=False rebuilds must not leak fusion counters ------------

class TestUnfusedRebuildCounters:
    def test_unfused_build_reports_zero_fusion_counters(self):
        from repro.isa.arm import assemble
        from repro.models.pipeline5 import Pipeline5Model

        program = assemble("""
    .text
_start:
    mov r0, #0
    swi #0
""")
        fused = Pipeline5Model(program, fused=True)
        assert fused.spec.compile_stats.fused_states > 0
        plain = Pipeline5Model(program, fused=False)
        stats = plain.spec.compile_stats
        assert stats.fused_states == 0
        assert stats.fused_fallback_states == 0
        assert getattr(plain.spec, "fuse_certificate", None) is None

    def test_defuse_spec_clears_census_and_certificate(self):
        spec = build_spec("ppc750")
        assert spec.compile_stats.fused_states > 0
        fuse.defuse_spec(spec)
        assert spec.compile_stats.fused_states == 0
        assert spec.compile_stats.fused_fallback_states == 0
        assert spec.fuse_certificate is None
        assert all(s._fused is None for s in spec.states.values())


# -- satellite: unsafe / impure __fuse_inline__ declarations ------------------

class TestInlineContract:
    def test_fuser_demotes_unsafe_inline_to_dynamic_call(self):
        spec = build_spec("pipeline5")
        state = next(
            s for s in spec.states.values()
            if s._fused is not None
            and "(osm.operation.instr.src_regs)" in s._fused.__fused_source__)
        original = p5model._source_regs.__fuse_inline__
        p5model._source_regs.__fuse_inline__ = "_source_regs(osm)"  # a call
        try:
            assert not fuse.safe_inline_expr("_source_regs(osm)")
            stepper = fuse.generate_stepper(state, spec)
        finally:
            p5model._source_regs.__fuse_inline__ = original
        source = stepper.__fused_source__
        # the unsafe expression is not pasted; the site is a bound call
        assert "_source_regs(osm)" not in source
        assert "(osm.operation.instr.src_regs)" not in source
        assert "(osm)" in source

    def test_trv002_warns_on_unsafe_inline_expression(self):
        spec = build_spec("pipeline5")
        original = p5model._source_regs.__fuse_inline__
        p5model._source_regs.__fuse_inline__ = "_source_regs(osm)"
        try:
            report = certify_spec(spec, codes=["TRV002"])
        finally:
            p5model._source_regs.__fuse_inline__ = original
        warned = _warnings(report, "TRV002")
        assert warned and "not a safe expression" in warned[0].message
        assert report.ok  # the fuser demotes; a warning, not an error

    def test_trv002_flags_impure_tagged_callable(self):
        def impure(osm):
            osm.n_transitions += 1
            return osm.operation.instr.src_regs

        impure.__fuse_inline__ = "osm.operation.instr.src_regs"
        diags = self._run_inline_pass(impure)
        assert any(d.severity.value == "error" and "impure" in d.message
                   for d in diags)

    def test_trv002_warns_on_unverifiable_body(self):
        def multi(osm):
            regs = osm.operation.instr
            return regs.src_regs

        multi.__fuse_inline__ = "osm.operation.instr.src_regs"
        diags = self._run_inline_pass(multi)
        assert any(d.severity.value == "warning"
                   and "unverifiable" in d.message for d in diags)

    def test_trv002_accepts_faithful_tag(self):
        def faithful(osm):
            return osm.operation.instr.src_regs

        faithful.__fuse_inline__ = "osm.operation.instr.src_regs"
        assert self._run_inline_pass(faithful) == []

    @staticmethod
    def _run_inline_pass(fn):
        class _Site:
            name = "test.ident"
            role = "ident"
            param_roles = ("osm",)
            edge = None

            def __init__(self, fn):
                self.fn = fn

        class _Ctx:
            class spec:
                name = "inline-fixture"

            def __init__(self, fn):
                self.ident_sites = [_Site(fn)]

        return list(Trv002InlineContract().run(_Ctx(fn)))


# -- certificate freshness ----------------------------------------------------

def test_certificate_matches_current_generators():
    spec = build_spec("strongarm")
    cert = spec.fuse_certificate
    assert cert is not None
    assert cert["generator"] == generator_fingerprint()
    assert cert["fused_states"] == sorted(
        name for name, state in spec.states.items()
        if state._fused is not None)
