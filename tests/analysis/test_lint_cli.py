"""Tests for the ``repro lint`` CLI subcommand: exit codes, JSON schema,
rule filtering and error handling."""

import json

import pytest

from repro.analysis.lint import register_spec
from repro.analysis.lint.registry import _REGISTRY
from repro.cli import main
from repro.core import ALWAYS, Allocate, Condition, MachineSpec, SlotManager


@pytest.fixture()
def broken_spec_registered():
    """Temporarily register a spec with a guaranteed token-leak error."""

    def build():
        a = SlotManager("A")
        spec = MachineSpec("broken")
        spec.state("I", initial=True)
        spec.state("P")
        spec.edge("I", "P", Condition([Allocate(a)]))
        spec.edge("P", "I", ALWAYS, label="retire")
        return spec

    register_spec("broken", build)
    yield "broken"
    del _REGISTRY["broken"]


class TestLintCli:
    def test_clean_models_exit_zero(self, capsys):
        assert main(["lint", "strongarm", "ppc750"]) == 0
        out = capsys.readouterr().out
        assert "strongarm: 0 error(s), 0 warning(s)" in out
        assert "ppc750: 0 error(s), 0 warning(s)" in out

    def test_all_alias_lints_every_registered_spec(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        for name in ("pipeline5", "strongarm", "vliw", "multithread",
                     "ppc750", "adl-pipeline5", "adl-strongarm"):
            assert f"{name}:" in out

    def test_error_findings_exit_nonzero(self, broken_spec_registered, capsys):
        assert main(["lint", broken_spec_registered]) == 1
        out = capsys.readouterr().out
        assert "OSM001" in out and "error" in out

    def test_json_output_schema(self, broken_spec_registered, capsys):
        assert main(["lint", "pipeline5", broken_spec_registered, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert set(payload["models"]) == {"pipeline5", "broken"}
        assert payload["models"]["pipeline5"]["ok"] is True
        broken = payload["models"]["broken"]
        assert broken["ok"] is False
        assert broken["counts"]["error"] >= 1
        assert broken["passes"][0] == "OSM001"
        diagnostic = broken["diagnostics"][0]
        assert set(diagnostic) == {
            "code", "rule", "severity", "spec", "state", "edge",
            "message", "suppressed", "source_span",
        }
        assert diagnostic["code"] == "OSM001"
        assert diagnostic["edge"] == "retire@1"

    def test_rules_filter(self, broken_spec_registered, capsys):
        # the leak is an OSM001 finding; filtering to OSM006 hides it
        assert main(["lint", broken_spec_registered, "--rules", "OSM006"]) == 0
        out = capsys.readouterr().out
        assert "(1 passes)" in out

    def test_unknown_rule_code_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="OSM999"):
            main(["lint", "pipeline5", "--rules", "OSM999"])

    def test_unknown_model_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="available"):
            main(["lint", "nonesuch"])
