"""Tests for PowerPC-like instruction semantics via assembled fragments."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.ppc import assemble
from repro.iss import PpcInterpreter

from ..conftest import ppc_program


def run(body: str, data: str = "") -> PpcInterpreter:
    interpreter = PpcInterpreter(assemble(ppc_program(body, data)))
    interpreter.run(200_000)
    return interpreter


def regs_after(body: str, data: str = "") -> list:
    return run(body, data).state.regs.values


class TestArithmetic:
    def test_basic(self):
        regs = regs_after("""
    li    r4, 10
    li    r5, 3
    add   r6, r4, r5
    sub   r7, r4, r5
    subf  r8, r5, r4
    neg   r9, r5
    mulli r10, r4, 7
    mullw r11, r4, r5
    divw  r12, r4, r5
    divwu r13, r4, r5
""")
        assert regs[6] == 13
        assert regs[7] == 7
        assert regs[8] == 7
        assert regs[9] == 0xFFFFFFFD
        assert regs[10] == 70
        assert regs[11] == 30
        assert regs[12] == 3
        assert regs[13] == 3

    def test_divw_truncates_toward_zero(self):
        regs = regs_after("""
    li    r4, 0 - 7
    li    r5, 2
    divw  r6, r4, r5
""")
        assert regs[6] == 0xFFFFFFFD  # -3, not -4

    def test_divide_by_zero_yields_zero(self):
        regs = regs_after("""
    li    r4, 5
    li    r5, 0
    divw  r6, r4, r5
""")
        assert regs[6] == 0

    def test_mulhw(self):
        regs = regs_after("""
    li32  r4, 0x10000
    li32  r5, 0x10000
    mulhw r6, r4, r5
""")
        assert regs[6] == 1  # 2^32 >> 32

    def test_addis_and_li32(self):
        regs = regs_after("""
    lis   r4, 2
    li32  r5, 0xDEADBEEF
""")
        assert regs[4] == 0x20000
        assert regs[5] == 0xDEADBEEF


class TestLogicalAndShifts:
    def test_logicals(self):
        regs = regs_after("""
    li   r4, 0xF0
    li   r5, 0x3C
    and  r6, r4, r5
    or   r7, r4, r5
    xor  r8, r4, r5
    ori  r9, r4, 0x0F
    andi. r10, r4, 0x30
    xori r11, r4, 0xFF
""")
        assert regs[6] == 0x30
        assert regs[7] == 0xFC
        assert regs[8] == 0xCC
        assert regs[9] == 0xFF
        assert regs[10] == 0x30
        assert regs[11] == 0x0F

    def test_shifts(self):
        regs = regs_after("""
    li    r4, 1
    li    r5, 5
    slw   r6, r4, r5
    li    r7, 64
    srw   r8, r7, r5
    li32  r9, 0x80000000
    li    r10, 4
    sraw  r11, r9, r10
    srawi r12, r9, 8
    slwi  r13, r4, 10
    srwi  r14, r7, 2
""")
        assert regs[6] == 32
        assert regs[8] == 2
        assert regs[11] == 0xF8000000
        assert regs[12] == 0xFF800000
        assert regs[13] == 1024
        assert regs[14] == 16

    @pytest.mark.parametrize("sh,mb,me,source,expected", [
        (0, 24, 31, 0x12345678, 0x78),          # low byte mask
        (8, 0, 31, 0x12345678, 0x34567812),     # pure rotate
        (2, 0, 29, 0x12345678, 0x48D159E0),     # slwi 2
    ])
    def test_rlwinm(self, sh, mb, me, source, expected):
        regs = regs_after(f"""
    li32   r4, {source}
    rlwinm r5, r4, {sh}, {mb}, {me}
""")
        assert regs[5] == expected


class TestCompareAndBranch:
    def test_signed_vs_unsigned_compare(self):
        regs = regs_after("""
    li    r4, 0 - 1        ; 0xffffffff
    li    r5, 1
    cmpw  r4, r5
    blt   signed_lt
    li    r6, 99
signed_lt:
    cmplw r4, r5
    bgt   unsigned_gt
    li    r7, 99
unsigned_gt:
    li    r8, 1
""")
        assert regs[6] == 0   # signed: -1 < 1, so skip not taken... branch taken
        assert regs[7] == 0
        assert regs[8] == 1

    def test_ctr_loop(self):
        regs = regs_after("""
    li    r4, 5
    mtctr r4
    li    r5, 0
loop:
    addi  r5, r5, 3
    bdnz  loop
""")
        assert regs[5] == 15

    def test_call_return(self):
        regs = regs_after("""
    li   r3, 1
    bl   fn
    addi r3, r3, 10
    b    done
fn:
    addi r3, r3, 100
    blr
done:
    mr   r4, r3
""")
        assert regs[4] == 111

    def test_bctr(self):
        regs = regs_after("""
    li32  r4, target
    mtctr r4
    bctr
    li    r5, 99         ; skipped
target:
    li    r6, 7
""")
        assert regs[5] == 0
        assert regs[6] == 7


class TestMemory:
    def test_word_byte_indexed(self):
        regs = regs_after("""
    li32  r4, buf
    li32  r5, 0xCAFEBABE
    stw   r5, 0(r4)
    lwz   r6, 0(r4)
    lbz   r7, 0(r4)
    li    r8, 4
    stwx  r5, r4, r8
    lwzx  r9, r4, r8
    stb   r5, 8(r4)
    lbzx  r10, r4, r8
""", data="buf: .space 16")
        assert regs[6] == 0xCAFEBABE
        assert regs[7] == 0xBE
        assert regs[9] == 0xCAFEBABE
        assert regs[10] == 0xBE

    def test_negative_displacement(self):
        regs = regs_after("""
    li32 r4, buf + 8
    lwz  r5, -4(r4)
""", data="buf: .word 1, 2, 3")
        assert regs[5] == 2


class TestSyscalls:
    def test_exit(self):
        interpreter = run("    li r3, 9")
        assert interpreter.state.exit_code == 9

    def test_write(self):
        interpreter = run("""
    li32 r3, msg
    li   r4, 5
    li   r0, 2
    sc
    li   r3, 0
""", data='msg: .asciz "hello"')
        assert interpreter.syscalls.output_text == "hello"


class TestPropertySemantics:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(-(1 << 31), (1 << 31) - 1), st.integers(-(1 << 31), (1 << 31) - 1))
    def test_add_sub_match_python(self, a, b):
        regs = regs_after(f"""
    li32 r4, {a & 0xFFFFFFFF}
    li32 r5, {b & 0xFFFFFFFF}
    add  r6, r4, r5
    sub  r7, r4, r5
""")
        assert regs[6] == (a + b) & 0xFFFFFFFF
        assert regs[7] == (a - b) & 0xFFFFFFFF

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 31),
           st.integers(0, 31), st.integers(0, 31))
    def test_rlwinm_matches_reference(self, value, sh, mb, me):
        def rotl(v, n):
            n &= 31
            return ((v << n) | (v >> (32 - n))) & 0xFFFFFFFF if n else v

        def mask(mb, me):
            # independent reference: enumerate the selected big-endian bits
            if mb <= me:
                selected = range(mb, me + 1)
            else:
                selected = [b for b in range(32) if b >= mb or b <= me]
            out = 0
            for bit_index in selected:
                out |= 1 << (31 - bit_index)
            return out

        regs = regs_after(f"""
    li32   r4, {value}
    rlwinm r5, r4, {sh}, {mb}, {me}
""")
        assert regs[5] == rotl(value, sh) & mask(mb, me)
