"""Tests for ARM-like instruction semantics via assembled fragments."""

from hypothesis import given, settings, strategies as st

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter

from ..conftest import arm_program


def run(body: str, data: str = "", max_steps: int = 200_000) -> ArmInterpreter:
    interpreter = ArmInterpreter(assemble(arm_program(body, data)))
    interpreter.run(max_steps)
    return interpreter


def regs_after(body: str, data: str = "") -> list:
    return run(body, data).state.regs.values


class TestDataProcessing:
    def test_basic_alu(self):
        regs = regs_after("""
    mov r1, #10
    mov r2, #3
    add r3, r1, r2
    sub r4, r1, r2
    rsb r5, r2, r1
    orr r6, r1, r2
    and r7, r1, r2
    eor r8, r1, r2
    bic r9, r1, r2
    mvn r10, r1
""")
        assert regs[3] == 13
        assert regs[4] == 7
        assert regs[5] == 7
        assert regs[6] == 11
        assert regs[7] == 2
        assert regs[8] == 9
        assert regs[9] == 8
        assert regs[10] == 0xFFFFFFF5

    def test_barrel_shifter(self):
        regs = regs_after("""
    mov r1, #1
    mov r2, r1, lsl #4
    mov r3, #0x80
    mov r4, r3, lsr #3
    li  r5, 0x80000000
    mov r6, r5, asr #4
    mov r7, r5, ror #8
""")
        assert regs[2] == 16
        assert regs[4] == 16
        assert regs[6] == 0xF8000000
        assert regs[7] == 0x00800000

    def test_flags_and_conditions(self):
        regs = regs_after("""
    mov r1, #5
    cmp r1, #5
    moveq r2, #1
    movne r3, #1
    cmp r1, #9
    movlt r4, #1
    movge r5, #1
    cmp r1, #2
    movgt r6, #1
""")
        assert regs[2] == 1
        assert regs[3] == 0
        assert regs[4] == 1
        assert regs[5] == 0
        assert regs[6] == 1

    def test_carry_chain_adc(self):
        regs = regs_after("""
    li   r1, 0xFFFFFFFF
    mov  r2, #1
    adds r3, r1, r2      ; carry out
    adc  r4, r2, #0      ; r4 = 1 + 0 + carry = 2
""")
        assert regs[3] == 0
        assert regs[4] == 2

    def test_unsigned_conditions(self):
        regs = regs_after("""
    li   r1, 0xFFFFFFFF
    cmp  r1, #1
    movhi r2, #1          ; unsigned: 0xffffffff > 1
    movlt r3, #1          ; signed:   -1 < 1
""")
        assert regs[2] == 1
        assert regs[3] == 1

    def test_tst_and_teq(self):
        regs = regs_after("""
    mov r1, #6
    tst r1, #1
    moveq r2, #1          ; 6 & 1 == 0
    teq r1, #6
    moveq r3, #1          ; 6 ^ 6 == 0
""")
        assert regs[2] == 1
        assert regs[3] == 1


class TestMultiply:
    def test_mul_and_mla(self):
        regs = regs_after("""
    mov r1, #7
    mov r2, #6
    mul r3, r1, r2
    mov r4, #100
    mla r5, r1, r2, r4
""")
        assert regs[3] == 42
        assert regs[5] == 142

    def test_umull_smull(self):
        regs = regs_after("""
    li    r1, 0xFFFFFFFF
    mov   r2, #2
    umull r3, r4, r1, r2     ; 0x1FFFFFFFE
    smull r5, r6, r1, r2     ; -1 * 2 = -2
""")
        assert regs[3] == 0xFFFFFFFE
        assert regs[4] == 1
        assert regs[5] == 0xFFFFFFFE
        assert regs[6] == 0xFFFFFFFF


class TestLoadStore:
    def test_word_and_byte(self):
        regs = regs_after("""
    li   r1, buf
    li   r2, 0x11223344
    str  r2, [r1]
    ldr  r3, [r1]
    ldrb r4, [r1]          ; little endian: lowest byte
    ldrb r5, [r1, #1]
    strb r2, [r1, #8]
    ldr  r6, [r1, #8]
""", data="buf: .space 16")
        assert regs[3] == 0x11223344
        assert regs[4] == 0x44
        assert regs[5] == 0x33
        assert regs[6] == 0x44

    def test_register_offset_with_shift(self):
        regs = regs_after("""
    li  r1, table
    mov r2, #2
    ldr r3, [r1, r2, lsl #2]
""", data="table: .word 10, 11, 12, 13")
        assert regs[3] == 12

    def test_negative_offset(self):
        regs = regs_after("""
    li  r1, table + 8
    ldr r2, [r1, #-4]
""", data="table: .word 5, 6, 7")
        assert regs[2] == 6


class TestControlFlow:
    def test_bl_and_bx_return(self):
        interpreter = run("""
    mov r0, #1
    bl  sub
    add r0, r0, #10      ; executed after return
    b   end
sub:
    add r0, r0, #100
    bx  lr
end:
    nop
""")
        assert interpreter.state.regs.values[0] == 111

    def test_conditional_branch_not_taken_falls_through(self):
        regs = regs_after("""
    mov r1, #1
    cmp r1, #2
    beq skip
    mov r2, #42
skip:
    nop
""")
        assert regs[2] == 42

    def test_failed_condition_has_no_side_effects(self):
        regs = regs_after("""
    mov  r1, #1
    mov  r2, #0
    cmp  r1, #9
    addeq r2, r2, #5     ; must not execute
    ldreq r2, [r9]       ; must not even access memory
""")
        assert regs[2] == 0


class TestSyscalls:
    def test_exit_code(self):
        interpreter = run("mov r0, #42")
        assert interpreter.state.exit_code == 42

    def test_putc_and_write(self):
        interpreter = run("""
    mov r0, #72           ; 'H'
    swi #1
    li  r0, msg
    mov r1, #2
    swi #2
    mov r0, #0
""", data='msg: .ascii "i!"')
        assert interpreter.syscalls.output_text == "Hi!"


@st.composite
def alu_fragment(draw):
    """A random short, straight-line ALU computation."""
    lines = []
    for reg in range(1, 5):
        lines.append(f"    li  r{reg}, {draw(st.integers(0, 0xFFFFFFFF))}")
    ops = st.sampled_from(["add", "sub", "and", "orr", "eor", "bic"])
    for _ in range(draw(st.integers(1, 6))):
        op = draw(ops)
        rd = draw(st.integers(1, 6))
        rn = draw(st.integers(1, 6))
        rm = draw(st.integers(1, 6))
        lines.append(f"    {op} r{rd}, r{rn}, r{rm}")
    return "\n".join(lines)


PY_OPS = {
    "add": lambda a, b: (a + b) & 0xFFFFFFFF,
    "sub": lambda a, b: (a - b) & 0xFFFFFFFF,
    "and": lambda a, b: a & b,
    "orr": lambda a, b: a | b,
    "eor": lambda a, b: a ^ b,
    "bic": lambda a, b: a & ~b & 0xFFFFFFFF,
}


class TestPropertySemantics:
    @settings(max_examples=40, deadline=None)
    @given(alu_fragment())
    def test_alu_matches_python_golden_model(self, fragment):
        """Differential test: ISS vs a direct Python evaluation."""
        golden = [0] * 16
        for line in fragment.splitlines():
            parts = line.split()
            if parts[0] == "li":
                golden[int(parts[1][1:-1])] = int(parts[2])
            else:
                op = PY_OPS[parts[0]]
                rd = int(parts[1][1:-1])
                rn = int(parts[2][1:-1])
                rm = int(parts[3][1:])
                golden[rd] = op(golden[rn], golden[rm])
        interpreter = run(fragment + "\n    mov r0, #0")
        assert interpreter.state.regs.values[1:7] == golden[1:7]
