"""Pinned regressions for divergences surfaced by ``repro audit``.

Each test here pins one real cross-layer bug the isaaudit passes found
(or the auditor's prerequisite fixes), so the specific divergence cannot
silently return:

* ARM RRX and flag-setting logical ops with a carry-passthrough shifter
  form are *carry readers* and must declare ``reads_flags`` (ISA004).
* PPC CTR-decrementing branches (any BO with bit 2 clear, in both B-form
  and XL-form) must declare CTR traffic matching the executed semantics
  (ISA004/ISA005).
* Encoders must reject out-of-range fields instead of letting them bleed
  into neighbouring bit fields (ISA007).
* The StrongARM forwarding register file must ignore a stale (non-
  youngest) writer's ``mark_ready`` publication.
"""

import pytest

from repro.isa.arm import encode as arm_encode
from repro.isa.arm import isa as arm_isa
from repro.isa.arm.decode import decode as arm_decode
from repro.isa.ppc import encode as ppc_encode
from repro.isa.ppc import isa as ppc_isa
from repro.isa.ppc.decode import decode as ppc_decode

AL = arm_isa.COND_AL
FLAGS = arm_isa.FLAGS_REG
CTR = ppc_isa.CTR_REG


def _arm(word):
    return arm_decode(0x1000, word)


def _ppc(word):
    return ppc_decode(0x1000, word)


class TestArmCarryReaders:
    def test_rrx_reads_carry(self):
        # mov r2, r3, rrx — register form, ROR #0 rotates C into bit 31
        i = _arm(arm_encode.dp_register(AL, 13, 0, 0, 2, 3, 3, 0))
        assert i.reads_flags
        assert FLAGS in i.src_regs

    def test_plain_ror_does_not_read_carry(self):
        i = _arm(arm_encode.dp_register(AL, 13, 0, 0, 2, 3, 3, 4))
        assert not i.reads_flags

    def test_logical_s_with_unrotated_immediate_reads_carry(self):
        # ands r2, r1, #0x55 — rotate 0, shifter carry-out = incoming C
        i = _arm(arm_encode.dp_immediate(AL, 0, 1, 1, 2, 0x55))
        assert i.reads_flags
        assert FLAGS in i.src_regs

    def test_logical_s_with_rotated_immediate_computes_carry(self):
        # 0x3FC needs a nonzero rotate; the rotation produces the carry
        i = _arm(arm_encode.dp_immediate(AL, 0, 1, 1, 2, 0x3FC))
        assert not i.reads_flags

    def test_logical_s_lsl0_reads_carry(self):
        # movs r2, r3 — LSL #0 passes the incoming carry through
        i = _arm(arm_encode.dp_register(AL, 13, 1, 0, 2, 3, 0, 0))
        assert i.reads_flags

    def test_logical_s_lsl4_computes_carry(self):
        i = _arm(arm_encode.dp_register(AL, 13, 1, 0, 2, 3, 0, 4))
        assert not i.reads_flags

    def test_arithmetic_s_does_not_read_carry(self):
        # adds computes C in the ALU; only adc/sbc/rsc consume it
        i = _arm(arm_encode.dp_immediate(AL, 4, 1, 1, 2, 0x55))
        assert not i.reads_flags

    def test_non_flag_setting_logical_does_not_read_carry(self):
        i = _arm(arm_encode.dp_immediate(AL, 0, 0, 1, 2, 0x55))
        assert not i.reads_flags


class TestPpcCtrDeclaration:
    def test_bc_dnz_declares_ctr_read_and_write(self):
        i = _ppc(ppc_encode.b_form(ppc_isa.BO_DNZ, ppc_isa.CR_EQ, 8))
        assert i.reads_ctr and i.writes_ctr
        assert CTR in i.src_regs and CTR in i.dst_regs

    def test_bc_decrements_for_any_bo_with_bit2_clear(self):
        # bo=0b00000: decrement CTR, branch if CTR != 0 AND cond false —
        # not one of the named BO_* encodings, but still decrements
        i = _ppc(ppc_encode.b_form(0b00000, ppc_isa.CR_EQ, 8))
        assert i.reads_ctr and i.writes_ctr

    def test_bc_false_does_not_touch_ctr(self):
        i = _ppc(ppc_encode.b_form(ppc_isa.BO_FALSE, ppc_isa.CR_EQ, 8))
        assert not i.reads_ctr and not i.writes_ctr
        assert CTR not in i.src_regs and CTR not in i.dst_regs

    def test_bclr_dnz_declares_ctr(self):
        i = _ppc(ppc_encode.xl_form(ppc_isa.XL_BCLR, ppc_isa.BO_DNZ, 0))
        assert i.kind == "bclr"
        assert i.reads_ctr and i.writes_ctr
        assert CTR in i.src_regs and CTR in i.dst_regs

    def test_bcctr_dnz_writes_ctr_and_lists_it_once(self):
        i = _ppc(ppc_encode.xl_form(ppc_isa.XL_BCCTR, 0b10000, 0))
        assert i.kind == "bcctr"
        assert i.writes_ctr
        # CTR is both the branch target and the decremented counter, but
        # must appear exactly once in the source list
        assert i.src_regs.count(CTR) == 1
        assert CTR in i.dst_regs

    def test_bcctr_always_reads_but_does_not_write_ctr(self):
        i = _ppc(ppc_encode.xl_form(ppc_isa.XL_BCCTR, ppc_isa.BO_ALWAYS, 0))
        assert CTR in i.src_regs
        assert not i.writes_ctr and CTR not in i.dst_regs


class TestEncoderFieldValidation:
    def test_arm_rejects_reserved_condition(self):
        with pytest.raises(ValueError):
            arm_encode.dp_immediate(0xF, 0, 0, 1, 2, 0)

    def test_arm_rejects_out_of_range_register(self):
        with pytest.raises(ValueError):
            arm_encode.dp_register(AL, 0, 0, 1, 16, 3, 0, 0)

    def test_arm_bx_rejects_out_of_range_rm(self):
        # rm=16 would bleed into bit 4 and decode as something else
        with pytest.raises(ValueError):
            arm_encode.branch_exchange(AL, 16)

    def test_arm_multiply_rejects_out_of_range_register(self):
        with pytest.raises(ValueError):
            arm_encode.multiply(AL, 0, 0, 4, 5, 17, 7)

    def test_ppc_d_form_rejects_out_of_range_register(self):
        with pytest.raises(ValueError):
            ppc_encode.d_form(ppc_isa.OP_ADDI, 32, 0, 1)

    def test_ppc_b_form_rejects_wide_bo(self):
        with pytest.raises(ValueError):
            ppc_encode.b_form(32, 0, 8)

    def test_ppc_xl_form_rejects_wide_bo(self):
        with pytest.raises(ValueError):
            ppc_encode.xl_form(ppc_isa.XL_BCLR, 32, 0)

    def test_ppc_srawi_rejects_wide_shift(self):
        with pytest.raises(ValueError):
            ppc_encode.srawi(1, 2, 32)

    def test_ppc_spr_move_rejects_unknown_spr(self):
        with pytest.raises(ValueError):
            ppc_encode.spr_move(ppc_isa.XO_MTSPR, 1, 123)


class TestForwardingPublicationOrder:
    def test_stale_writer_publication_is_dropped(self):
        """An older in-flight writer publishing after a younger writer
        allocated the same register must not set the register ready."""
        from repro.models.strongarm.managers import ForwardingRegisterFileManager

        class _Backing:
            def read(self, reg):
                return 0

            def write(self, reg, value):
                pass

        mgr = ForwardingRegisterFileManager("rf", 4, _Backing())
        old_writer, young_writer = object(), object()
        mgr._writers[1] = [old_writer, young_writer]
        mgr._ready[1] = False

        mgr.mark_ready(1, osm=old_writer)  # stale: must be ignored
        assert mgr._ready[1] is False

        mgr.mark_ready(1, osm=young_writer)
        assert mgr._ready[1] is True

    def test_anonymous_publication_is_trusted(self):
        from repro.models.strongarm.managers import ForwardingRegisterFileManager

        class _Backing:
            def read(self, reg):
                return 0

            def write(self, reg, value):
                pass

        mgr = ForwardingRegisterFileManager("rf", 4, _Backing())
        mgr._writers[1] = [object()]
        mgr._ready[1] = False
        mgr.mark_ready(1)  # osm=None: hand-built specs without operations
        assert mgr._ready[1] is True
