"""Tests for the generic two-pass assembler (directives, labels,
expressions, error reporting)."""

import pytest

from repro.isa.arm import assemble
from repro.isa.assembler import AssemblyError, ExpressionEvaluator, split_operands


class TestDirectives:
    def test_word_half_byte(self):
        program = assemble("""
    .data
values: .word 0x11223344, 2
halves: .half 0x5566, 3
bytes:  .byte 1, 2, 3
""")
        data = program.sections[".data"]
        base = data.base
        assert program.symbols["values"] == base
        assert data.data[0:4] == bytes([0x44, 0x33, 0x22, 0x11])  # little endian
        assert data.data[8:10] == bytes([0x66, 0x55])
        assert data.data[12:15] == bytes([1, 2, 3])

    def test_ascii_and_asciz(self):
        program = assemble("""
    .data
a: .ascii "hi"
z: .asciz "hi"
""")
        data = program.sections[".data"].data
        assert bytes(data[0:2]) == b"hi"
        assert bytes(data[2:5]) == b"hi\x00"

    def test_string_escapes(self):
        program = assemble(r"""
    .data
s: .asciz "a\n\t\\\"b"
""")
        assert bytes(program.sections[".data"].data[:7]) == b'a\n\t\\"b\x00'

    def test_space_with_fill(self):
        program = assemble("""
    .data
gap: .space 4, 0xAB
""")
        assert bytes(program.sections[".data"].data[:4]) == b"\xab\xab\xab\xab"

    def test_align(self):
        program = assemble("""
    .data
    .byte 1
    .align 2
w:  .word 2
""")
        assert program.symbols["w"] % 4 == 0

    def test_equ(self):
        program = assemble("""
    .equ SIZE, 12
    .data
buf: .space SIZE
end:
""")
        assert program.symbols["end"] - program.symbols["buf"] == 12

    def test_org(self):
        program = assemble("""
    .text
    .org 0x9000
_start:
    nop
""")
        assert program.symbols["_start"] == 0x9000

    def test_globl_accepted(self):
        assemble("""
    .globl _start
    .text
_start:
    nop
""")


class TestLabels:
    def test_forward_reference(self):
        program = assemble("""
    .text
_start:
    b done
    nop
done:
    nop
""")
        assert program.symbols["done"] == program.symbols["_start"] + 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("""
    .text
x:  nop
x:  nop
""")

    def test_undefined_symbol_reports_line(self):
        with pytest.raises(AssemblyError, match="line 4.*undefined symbol"):
            assemble("""
    .text
_start:
    b nowhere
""")

    def test_label_on_same_line_as_instruction(self):
        program = assemble("""
    .text
_start: nop
""")
        assert program.entry == program.symbols["_start"]

    def test_entry_defaults_to_text_base_without_start(self):
        program = assemble("""
    .text
    nop
""")
        assert program.entry == program.sections[".text"].base


class TestExpressions:
    def _eval(self, text, symbols=None):
        return ExpressionEvaluator(symbols or {}).eval(text)

    @pytest.mark.parametrize("expr,value", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("0x10 | 0x01", 0x11),
        ("0b101 << 2", 20),
        ("~0 & 0xF", 15),
        ("-4 + 10", 6),
        ("100 / 7", 14),
        ("100 % 7", 2),
        ("1 << 4 >> 2", 4),
        ("5 ^ 3", 6),
        ("'A'", 65),
        (r"'\n'", 10),
    ])
    def test_operators(self, expr, value):
        assert self._eval(expr) == value

    def test_symbols_and_here(self):
        evaluator = ExpressionEvaluator({"base": 0x100}, here=0x40)
        assert evaluator.eval("base + 4") == 0x104
        assert evaluator.eval(". + 8") == 0x48

    def test_bad_expression(self):
        with pytest.raises(AssemblyError):
            self._eval("1 +")
        with pytest.raises(AssemblyError):
            self._eval("(1")
        with pytest.raises(AssemblyError):
            self._eval("")


class TestSplitOperands:
    def test_brackets_protect_commas(self):
        assert split_operands("r0, [r1, #4], r2") == ["r0", "[r1, #4]", "r2"]

    def test_strings_protect_commas(self):
        assert split_operands('"a,b", c') == ['"a,b"', "c"]

    def test_empty(self):
        assert split_operands("") == []


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("""
    .text
    frobnicate r0
""")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble("""
    .text
    .bogus 4
""")

    def test_comment_styles(self):
        program = assemble("""
    .text            ; semicolon comment
_start:              @ at comment
    nop              // slash comment
""")
        assert program.text.size == 4
