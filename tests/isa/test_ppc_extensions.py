"""Tests for the extended PPC instructions (halfwords, sign extension,
count-leading-zeros, subtract-from-immediate)."""

import pytest

from repro.isa.ppc import assemble, decode
from repro.isa.ppc import encode, isa as ppc_isa
from repro.iss import PpcInterpreter
from repro.models.ppc750 import Ppc750Model

from ..conftest import ppc_program


def regs_after(body: str, data: str = "") -> list:
    interpreter = PpcInterpreter(assemble(ppc_program(body, data)))
    interpreter.run(200_000)
    return interpreter.state.regs.values


class TestHalfwords:
    def test_store_load_halfword(self):
        regs = regs_after("""
    li32 r6, buf
    li32 r4, 0x12345678
    sth  r4, 0(r6)
    lhz  r5, 0(r6)
""", data="buf: .space 8")
        assert regs[5] == 0x5678  # only the low half was stored

    def test_lha_sign_extends(self):
        regs = regs_after("""
    li32 r6, buf
    li32 r4, 0x8000
    sth  r4, 0(r6)
    lha  r5, 0(r6)
    lhz  r7, 0(r6)
""", data="buf: .space 8")
        assert regs[5] == 0xFFFF8000
        assert regs[7] == 0x8000

    def test_decode_units(self):
        instr = decode(0, encode.d_form(ppc_isa.OP_LHA, 3, 4, 2))
        assert instr.mnemonic == "lha"
        assert instr.is_load
        assert instr.unit == ppc_isa.UNIT_LSU


class TestSignExtension:
    @pytest.mark.parametrize("value,extsb,extsh", [
        (0x41, 0x41, 0x41),
        (0x80, 0xFFFFFF80, 0x80),
        (0xFF7F, 0x7F, 0xFFFFFF7F),
        (0x8000, 0x00, 0xFFFF8000),
    ])
    def test_extsb_extsh(self, value, extsb, extsh):
        regs = regs_after(f"""
    li32  r4, {value}
    extsb r5, r4
    extsh r6, r4
""")
        assert regs[5] == extsb
        assert regs[6] == extsh

    def test_record_form(self):
        regs = regs_after("""
    li32   r4, 0x80
    extsb. r5, r4        ; result negative -> LT set
    blt    was_negative
    li     r7, 99
was_negative:
    li     r8, 1
""")
        assert regs[7] == 0
        assert regs[8] == 1


class TestCntlzw:
    @pytest.mark.parametrize("value,expected", [
        (0, 32), (1, 31), (0x80000000, 0), (0x00010000, 15), (0xFFFFFFFF, 0),
    ])
    def test_counts(self, value, expected):
        regs = regs_after(f"""
    li32   r4, {value}
    cntlzw r5, r4
""")
        assert regs[5] == expected


class TestSubfic:
    def test_subtract_from_immediate(self):
        regs = regs_after("""
    li     r4, 30
    subfic r5, r4, 100   ; 100 - 30
    li     r6, 0 - 5
    subfic r7, r6, 10    ; 10 - (-5)
""")
        assert regs[5] == 70
        assert regs[7] == 15


class TestThroughTheModel:
    def test_ooo_model_runs_extended_ops(self):
        source = ppc_program("""
    li32   r6, buf
    li     r4, 0
    li     r7, 0
lp:
    sth    r4, 0(r6)
    lha    r5, 0(r6)
    extsb  r8, r4
    cntlzw r9, r4
    add    r7, r7, r5
    add    r7, r7, r9
    addi   r4, r4, 37
    cmpwi  r4, 370
    blt    lp
    andi.  r3, r7, 255
""", data="buf: .space 8")
        iss = PpcInterpreter(assemble(source))
        iss.run()
        model = Ppc750Model(assemble(source), perfect_memory=True)
        model.run()
        assert model.exit_code == iss.state.exit_code
        assert model.kernel.stats.instructions == iss.steps
