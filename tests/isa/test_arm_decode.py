"""Tests for ARM encode/decode round-trips and mnemonic parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.arm import decode, parse_mnemonic
from repro.isa.arm import encode
from repro.isa.arm.isa import COND_AL, CONDITIONS, DP_OPCODES, FLAGS_REG, LR, PC

regs = st.integers(min_value=0, max_value=14)  # avoid PC special cases
conds = st.sampled_from(sorted(set(CONDITIONS.values())))


class TestMnemonicParsing:
    @pytest.mark.parametrize("text,expected", [
        ("add", ("add", COND_AL, 0)),
        ("adds", ("add", COND_AL, 1)),
        ("addeq", ("add", CONDITIONS["eq"], 0)),
        ("addeqs", ("add", CONDITIONS["eq"], 1)),
        ("blt", ("b", CONDITIONS["lt"], 0)),       # NOT bl + t
        ("bllt", ("bl", CONDITIONS["lt"], 0)),
        ("bls", ("b", CONDITIONS["ls"], 0)),       # branches take no S
        ("bl", ("bl", COND_AL, 0)),
        ("bic", ("bic", COND_AL, 0)),              # not b + ic
        ("bics", ("bic", COND_AL, 1)),
        ("bxne", ("bx", CONDITIONS["ne"], 0)),
        ("movs", ("mov", COND_AL, 1)),
        ("mulne", ("mul", CONDITIONS["ne"], 0)),
        ("smulls", ("smull", COND_AL, 1)),
        ("ldrb", ("ldrb", COND_AL, 0)),
        ("ldrbne", ("ldrb", CONDITIONS["ne"], 0)),
        ("swi", ("swi", COND_AL, 0)),
    ])
    def test_known(self, text, expected):
        assert parse_mnemonic(text) == expected

    @pytest.mark.parametrize("text", ["frob", "addx", "bxs", "swis"])
    def test_unknown(self, text):
        assert parse_mnemonic(text) is None


class TestRotatedImmediate:
    @pytest.mark.parametrize("value", [0, 1, 0xFF, 0x100, 0xFF000000, 0x3FC, 0xC000003F])
    def test_encodable(self, value):
        rotate, imm8 = encode.encode_rotated_immediate(value)
        from repro.isa.bits import ror32

        assert ror32(imm8, 2 * rotate) == value

    @pytest.mark.parametrize("value", [0x101, 0xFFFF, 0x102030])
    def test_not_encodable(self, value):
        assert encode.encode_rotated_immediate(value) is None


class TestRoundTrip:
    @given(conds, st.sampled_from(sorted(DP_OPCODES.values())), regs, regs,
           st.integers(min_value=0, max_value=1))
    def test_dp_immediate(self, cond, opcode, rn, rd, s):
        word = encode.dp_immediate(cond, opcode, s, rn, rd, 0xFF)
        instr = decode(0x8000, word)
        assert instr.kind == "dp"
        assert instr.cond == cond
        assert instr.opcode == opcode
        assert instr.imm == 0xFF

    @given(conds, regs, regs, regs,
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=31))
    def test_dp_register_with_shift(self, cond, rd, rn, rm, shift_type, amount):
        word = encode.dp_register(cond, DP_OPCODES["add"], 0, rn, rd, rm,
                                  shift_type, amount)
        instr = decode(0, word)
        assert (instr.rd, instr.rn, instr.rm) == (rd, rn, rm)
        assert instr.shift_type == shift_type
        assert instr.shift_amount == amount
        assert not instr.has_imm

    @given(conds, regs, regs, regs)
    def test_multiply(self, cond, rd, rm, rs):
        word = encode.multiply(cond, 0, 0, rd, 0, rs, rm)
        instr = decode(0, word)
        assert instr.kind == "mul"
        assert instr.mnemonic == "mul"
        assert (instr.rd, instr.rm, instr.rs) == (rd, rm, rs)
        assert instr.unit == "mul"

    @given(regs, regs, regs, regs)
    def test_multiply_long(self, rdlo, rdhi, rm, rs):
        word = encode.multiply_long(COND_AL, 1, 0, 0, rdhi, rdlo, rs, rm)
        instr = decode(0, word)
        assert instr.kind == "mull"
        assert instr.mnemonic == "smull"
        assert (instr.rdlo, instr.rdhi) == (rdlo, rdhi)
        assert set(instr.dst_regs) == {rdlo, rdhi}

    @given(regs, regs, st.integers(min_value=-4095, max_value=4095))
    def test_load_store_immediate(self, rn, rd, offset):
        word = encode.load_store_immediate(COND_AL, 1, 0, rn, rd, offset)
        instr = decode(0, word)
        assert instr.kind == "ldst"
        assert instr.is_load
        assert instr.imm == offset
        assert instr.rn == rn and instr.rd == rd

    @given(st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1))
    def test_branch_offset(self, words_offset):
        word = encode.branch(COND_AL, 0, words_offset)
        instr = decode(0x8000, word)
        assert instr.kind == "branch"
        assert instr.imm == words_offset * 4

    def test_branch_exchange(self):
        word = encode.branch_exchange(COND_AL, 14)
        instr = decode(0, word)
        assert instr.kind == "bx"
        assert instr.rm == 14
        assert instr.src_regs == (14,)

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_swi(self, number):
        instr = decode(0, encode.software_interrupt(COND_AL, number))
        assert instr.kind == "swi"
        assert instr.swi_number == number


class TestHazardMetadata:
    def test_flags_flow_through_pseudo_register(self):
        cmp_word = encode.dp_immediate(COND_AL, DP_OPCODES["cmp"], 1, 1, 0, 0)
        cmp_instr = decode(0, cmp_word)
        assert FLAGS_REG in cmp_instr.dst_regs
        beq_word = encode.branch(CONDITIONS["eq"], 0, 2)
        beq_instr = decode(0, beq_word)
        assert FLAGS_REG in beq_instr.src_regs

    def test_adc_reads_flags_even_unconditional(self):
        word = encode.dp_register(COND_AL, DP_OPCODES["adc"], 0, 1, 0, 2)
        assert FLAGS_REG in decode(0, word).src_regs

    def test_store_reads_its_data_register(self):
        word = encode.load_store_immediate(COND_AL, 0, 0, 1, 2, 4)
        instr = decode(0, word)
        assert instr.is_store
        assert 2 in instr.src_regs
        assert instr.dst_regs == ()

    def test_bl_writes_link_register(self):
        instr = decode(0, encode.branch(COND_AL, 1, 0))
        assert LR in instr.dst_regs

    def test_mov_to_pc_is_a_branch(self):
        word = encode.dp_register(COND_AL, DP_OPCODES["mov"], 0, 0, PC, 1)
        instr = decode(0, word)
        assert instr.writes_pc and instr.is_branch

    def test_undefined_word_decodes_to_udf(self):
        instr = decode(0, 0xF7FFFFFF)
        assert instr.mnemonic == "udf"
