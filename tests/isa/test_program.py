"""Tests for Program images and the loader."""

import pytest

from repro.isa.program import Program, Section
from repro.memory import MainMemory


class TestSection:
    def test_words_pads_to_word_boundary(self):
        section = Section(".data", 0x100, b"\x01\x02\x03\x04\x05")
        assert section.words() == [0x04030201, 0x00000005]

    def test_end(self):
        section = Section(".text", 0x8000, b"\x00" * 12)
        assert section.end == 0x800C


class TestProgram:
    def test_duplicate_section_rejected(self):
        program = Program()
        program.add_section(".text", 0, b"")
        with pytest.raises(ValueError):
            program.add_section(".text", 0, b"")

    def test_load_into_memory(self):
        program = Program(entry=0x8000)
        program.add_section(".text", 0x8000, bytes([0xEF, 0xBE, 0xAD, 0xDE]))
        program.add_section(".data", 0x40000, b"hi")
        memory = MainMemory()
        program.load_into(memory)
        assert memory.read_word(0x8000) == 0xDEADBEEF
        assert memory.read_block(0x40000, 2) == b"hi"

    def test_text_words(self):
        program = Program()
        program.add_section(".text", 0x8000, bytes(8))
        assert program.text_words() == [(0x8000, 0), (0x8004, 0)]

    def test_symbol_lookup(self):
        program = Program()
        program.symbols["main"] = 0x8010
        assert program.symbol("main") == 0x8010
        with pytest.raises(KeyError, match="undefined symbol"):
            program.symbol("missing")

    def test_text_and_data_properties(self):
        program = Program()
        assert program.text is None and program.data is None
        program.add_section(".text", 0, b"\0\0\0\0")
        assert program.text is not None
