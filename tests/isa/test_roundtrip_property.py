"""Property-style encode→decode→re-encode round-trip tests.

Two layers:

* **Lattice sampling** — hypothesis draws random points from the audit
  targets' field lattices (the same ground truth ``repro audit`` checks
  exhaustively) and asserts the re-encode fixpoint, for both ISAs.  This
  keeps the property suite and the auditor's notion of "round-trippable
  encoding class" from drifting apart.
* **Widened domains** — direct encoder properties over ranges much wider
  than the audit lattice (all conditions, opcodes, registers, full
  immediate bytes / simm16), catching field-packing bugs between the
  lattice's representative values.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.audit import build_target
from repro.analysis.audit.engine import AUDIT_ADDR
from repro.isa.arm import encode as arm_encode
from repro.isa.arm.decode import decode as arm_decode
from repro.isa.ppc import encode as ppc_encode
from repro.isa.ppc.decode import decode as ppc_decode


@lru_cache(maxsize=None)
def _target(name):
    return build_target(name)


@pytest.mark.parametrize("isa", ["arm", "ppc"])
@given(data=st.data())
@settings(max_examples=150, deadline=None)
def test_lattice_roundtrip_fixpoint(isa, data):
    target = _target(isa)
    classes = [c for c in target.classes if c.reencode is not None]
    cls = data.draw(st.sampled_from(classes))
    point = {
        name: data.draw(st.sampled_from(list(values)), label=name)
        for name, values in cls.fields.items()
    }
    word = cls.encode(point) & 0xFFFFFFFF
    instr = target.decode(AUDIT_ADDR, word)
    assert instr.kind not in target.udf_kinds, (
        f"{cls.name}{point} assembles to undecodable {word:#010x}")
    assert cls.reencode(instr) & 0xFFFFFFFF == word, (
        f"{cls.name}{point}: {word:#010x} -> {instr.text!r} does not "
        f"re-encode to itself")


# -- widened ARM domains ----------------------------------------------------

@given(
    cond=st.integers(0, 14), opcode=st.integers(0, 15),
    s=st.integers(0, 1), rn=st.integers(0, 14), rd=st.integers(0, 14),
    value=st.integers(0, 255),
)
@settings(max_examples=200, deadline=None)
def test_arm_dp_immediate_roundtrip(cond, opcode, s, rn, rd, value):
    word = arm_encode.dp_immediate(cond, opcode, s, rn, rd, value)
    i = arm_decode(AUDIT_ADDR, word)
    assert i.kind == "dp"
    assert arm_encode.dp_immediate(i.cond, i.opcode, i.s, i.rn, i.rd, i.imm) == word


@given(
    opcode=st.integers(0, 15), s=st.integers(0, 1),
    rn=st.integers(0, 14), rd=st.integers(0, 14), rm=st.integers(0, 14),
    shift_type=st.integers(0, 3), shift_amount=st.integers(0, 31),
)
@settings(max_examples=200, deadline=None)
def test_arm_dp_register_roundtrip(opcode, s, rn, rd, rm, shift_type, shift_amount):
    word = arm_encode.dp_register(
        14, opcode, s, rn, rd, rm, shift_type, shift_amount)
    i = arm_decode(AUDIT_ADDR, word)
    assert i.kind == "dp"
    assert arm_encode.dp_register(
        i.cond, i.opcode, i.s, i.rn, i.rd, i.rm, i.shift_type,
        i.shift_amount) == word


@given(
    load=st.integers(0, 1), byte=st.integers(0, 1),
    rn=st.integers(0, 14), rd=st.integers(0, 14),
    offset=st.integers(-4095, 4095),
)
@settings(max_examples=200, deadline=None)
def test_arm_load_store_immediate_roundtrip(load, byte, rn, rd, offset):
    word = arm_encode.load_store_immediate(14, load, byte, rn, rd, offset)
    i = arm_decode(AUDIT_ADDR, word)
    assert i.kind == "ldst"
    # the decoder folds the U bit into the sign of i.imm
    assert arm_encode.load_store_immediate(
        i.cond, int(i.is_load), i.byte, i.rn, i.rd, i.imm) == word


# -- widened PPC domains ----------------------------------------------------

@given(
    rt=st.integers(0, 31), ra=st.integers(0, 31),
    imm=st.integers(-32768, 32767),
)
@settings(max_examples=200, deadline=None)
def test_ppc_addi_roundtrip(rt, ra, imm):
    from repro.isa.ppc.isa import OP_ADDI

    word = ppc_encode.d_form(OP_ADDI, rt, ra, imm)
    i = ppc_decode(AUDIT_ADDR, word)
    assert i.kind == "dalu" and i.mnemonic == "addi"
    assert ppc_encode.d_form(OP_ADDI, i.rt, i.ra, i.imm) == word


@given(
    bo=st.sampled_from([0b10100, 0b01100, 0b00100, 0b10000, 0b00000,
                        0b01000, 0b00010]),
    bi=st.integers(0, 31), lk=st.integers(0, 1),
    offset=st.integers(-2048, 2047).map(lambda w: w * 4),
)
@settings(max_examples=200, deadline=None)
def test_ppc_bc_roundtrip(bo, bi, lk, offset):
    word = ppc_encode.b_form(bo, bi, offset, aa=0, lk=lk)
    i = ppc_decode(AUDIT_ADDR, word)
    assert i.kind == "bc"
    assert ppc_encode.b_form(i.bo, i.bi, i.imm, aa=i.aa, lk=i.lk) == word


@given(
    rs=st.integers(0, 31), ra=st.integers(0, 31),
    sh=st.integers(0, 31), mb=st.integers(0, 31), me=st.integers(0, 31),
    rc=st.integers(0, 1),
)
@settings(max_examples=200, deadline=None)
def test_ppc_rlwinm_roundtrip(rs, ra, sh, mb, me, rc):
    word = ppc_encode.rlwinm(rs, ra, sh, mb, me, rc)
    i = ppc_decode(AUDIT_ADDR, word)
    assert i.kind == "rlwinm"
    # the source register travels in the rt field (rS in PowerPC terms)
    assert ppc_encode.rlwinm(i.rt, i.ra, i.sh, i.mb, i.me, i.rc) == word
