"""Test package."""
