"""Tests for PPC encode/decode round-trips and hazard metadata."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.ppc import CR0_REG, CTR_REG, LR_REG, decode
from repro.isa.ppc import isa as ppc_isa
from repro.isa.ppc import encode

regs = st.integers(min_value=0, max_value=31)


class TestRoundTrip:
    @given(regs, regs, st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    def test_addi(self, rt, ra, imm):
        instr = decode(0, encode.d_form(ppc_isa.OP_ADDI, rt, ra, imm))
        assert instr.mnemonic == "addi"
        assert (instr.rt, instr.ra, instr.imm) == (rt, ra, imm)

    @given(regs, regs, regs)
    def test_add(self, rt, ra, rb):
        instr = decode(0, encode.x_form(ppc_isa.XO_ADD, rt, ra, rb))
        assert instr.mnemonic == "add"
        assert (instr.rt, instr.ra, instr.rb) == (rt, ra, rb)
        assert instr.src_regs == (ra, rb)
        assert instr.dst_regs == (rt,)

    @given(regs, regs, regs)
    def test_logical_rs_ra_swap(self, ra, rs, rb):
        """X-form logicals write rA and read rS (the rt field)."""
        instr = decode(0, encode.x_form(ppc_isa.XO_OR, rs, ra, rb))
        assert instr.dst_regs == (ra,)
        assert set(instr.src_regs) == {rs, rb}

    @given(regs, regs, st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    def test_lwz(self, rt, ra, disp):
        instr = decode(0, encode.d_form(ppc_isa.OP_LWZ, rt, ra, disp))
        assert instr.is_load and not instr.is_store
        assert instr.unit == ppc_isa.UNIT_LSU
        assert instr.imm == disp

    @given(regs, regs, regs)
    def test_stwx(self, rs, ra, rb):
        instr = decode(0, encode.x_form(ppc_isa.XO_STWX, rs, ra, rb))
        assert instr.is_store
        assert rs in instr.src_regs

    @given(st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1))
    def test_branch(self, offset_words):
        instr = decode(0x8000, encode.i_form(offset_words * 4))
        assert instr.kind == "b"
        assert instr.imm == offset_words * 4

    @given(st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31))
    def test_rlwinm(self, sh, mb, me):
        instr = decode(0, encode.rlwinm(3, 4, sh, mb, me))
        assert (instr.sh, instr.mb, instr.me) == (sh, mb, me)
        assert instr.dst_regs == (4,)

    def test_spr_moves(self):
        mtlr = decode(0, encode.spr_move(ppc_isa.XO_MTSPR, 5, ppc_isa.SPR_LR))
        assert mtlr.mnemonic == "mtlr"
        assert mtlr.dst_regs == (LR_REG,)
        mfctr = decode(0, encode.spr_move(ppc_isa.XO_MFSPR, 6, ppc_isa.SPR_CTR))
        assert mfctr.mnemonic == "mfctr"
        assert mfctr.src_regs == (CTR_REG,)

    def test_mtctr_has_single_ctr_destination(self):
        """Regression: a duplicated CTR destination demands two rename
        buffers from a one-entry pool and deadlocks dispatch."""
        instr = decode(0, encode.spr_move(ppc_isa.XO_MTSPR, 5, ppc_isa.SPR_CTR))
        assert instr.dst_regs.count(CTR_REG) == 1


class TestHazardMetadata:
    def test_cmp_writes_cr0(self):
        instr = decode(0, encode.cmpi_form(ppc_isa.OP_CMPWI, 3, 7))
        assert CR0_REG in instr.dst_regs

    def test_conditional_branch_reads_cr0(self):
        word = encode.b_form(ppc_isa.BO_TRUE, ppc_isa.CR_EQ, 8)
        instr = decode(0, word)
        assert CR0_REG in instr.src_regs
        assert instr.is_branch

    def test_bdnz_reads_and_writes_ctr(self):
        word = encode.b_form(ppc_isa.BO_DNZ, 0, -8)
        instr = decode(0x100, word)
        assert CTR_REG in instr.src_regs
        assert CTR_REG in instr.dst_regs
        assert CR0_REG not in instr.src_regs  # direction ignores CR

    def test_blr_reads_lr(self):
        instr = decode(0, encode.xl_form(ppc_isa.XL_BCLR, ppc_isa.BO_ALWAYS, 0))
        assert instr.mnemonic == "blr"
        assert LR_REG in instr.src_regs

    def test_bl_writes_lr(self):
        instr = decode(0, encode.i_form(8, lk=1))
        assert LR_REG in instr.dst_regs

    def test_record_form_writes_cr0(self):
        instr = decode(0, encode.x_form(ppc_isa.XO_ADD, 1, 2, 3, rc=1))
        assert CR0_REG in instr.dst_regs

    def test_muldiv_route_to_iu1(self):
        mul = decode(0, encode.x_form(ppc_isa.XO_MULLW, 1, 2, 3))
        div = decode(0, encode.x_form(ppc_isa.XO_DIVW, 1, 2, 3))
        add = decode(0, encode.x_form(ppc_isa.XO_ADD, 1, 2, 3))
        assert mul.unit == ppc_isa.UNIT_IU1
        assert div.unit == ppc_isa.UNIT_IU1
        assert add.unit == ppc_isa.UNIT_IU2

    def test_addi_r0_means_literal_zero(self):
        instr = decode(0, encode.d_form(ppc_isa.OP_ADDI, 3, 0, 5))
        assert instr.src_regs == ()  # li form: no source register

    def test_illegal_word(self):
        assert decode(0, 0x00000000).mnemonic == "illegal"


class TestEncodeValidation:
    def test_register_range(self):
        with pytest.raises(ValueError):
            encode.d_form(ppc_isa.OP_ADDI, 32, 0, 0)

    def test_immediate_range(self):
        with pytest.raises(ValueError):
            encode.d_form(ppc_isa.OP_ADDI, 0, 0, 40000)
        with pytest.raises(ValueError):
            encode.d_form(ppc_isa.OP_ORI, 0, 0, -1, signed=False)

    def test_branch_alignment(self):
        with pytest.raises(ValueError):
            encode.i_form(6)

    def test_conditional_branch_range(self):
        with pytest.raises(ValueError):
            encode.b_form(ppc_isa.BO_TRUE, 0, 1 << 20)
