"""Tests for the bit-field utilities, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import bits

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)
s32s = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


class TestViews:
    @given(u32s)
    def test_u32_s32_roundtrip(self, value):
        assert bits.u32(bits.s32(value)) == value

    @given(s32s)
    def test_s32_range(self, value):
        assert -(1 << 31) <= bits.s32(value) < (1 << 31)

    def test_sign_extend(self):
        assert bits.sign_extend(0xFF, 8) == -1
        assert bits.sign_extend(0x7F, 8) == 127
        assert bits.sign_extend(0x800000, 24) == -(1 << 23)


class TestFields:
    def test_bits_extract(self):
        assert bits.bits(0xABCD1234, 31, 28) == 0xA
        assert bits.bits(0xABCD1234, 15, 0) == 0x1234
        assert bits.bit(0b1000, 3) == 1
        assert bits.bit(0b1000, 2) == 0

    def test_bits_bad_range(self):
        with pytest.raises(ValueError):
            bits.bits(0, 3, 7)

    def test_insert(self):
        assert bits.insert(0, 7, 4, 0xA) == 0xA0
        assert bits.insert(0xFF, 3, 0, 0) == 0xF0

    def test_insert_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits.insert(0, 3, 0, 16)


class TestShifts:
    @given(u32s, st.integers(min_value=0, max_value=31))
    def test_ror_is_rotation(self, value, amount):
        rotated = bits.ror32(value, amount)
        # rotating back restores the value
        assert bits.ror32(rotated, 32 - amount if amount else 0) == value

    @given(u32s, st.integers(min_value=0, max_value=63))
    def test_lsl_matches_python(self, value, amount):
        expected = (value << amount) & 0xFFFFFFFF if amount < 32 else 0
        assert bits.lsl32(value, amount) == expected

    @given(u32s, st.integers(min_value=0, max_value=63))
    def test_lsr_matches_python(self, value, amount):
        expected = value >> amount if amount < 32 else 0
        assert bits.lsr32(value, amount) == expected

    @given(u32s, st.integers(min_value=0, max_value=31))
    def test_asr_matches_python(self, value, amount):
        assert bits.asr32(value, amount) == (bits.s32(value) >> amount) & 0xFFFFFFFF

    def test_asr_saturates_at_32(self):
        assert bits.asr32(0x80000000, 40) == 0xFFFFFFFF
        assert bits.asr32(0x7FFFFFFF, 40) == 0


class TestArithmetic:
    @given(u32s, u32s)
    def test_add_carries(self, a, b):
        result, carry, overflow = bits.add_carries(a, b)
        assert result == (a + b) & 0xFFFFFFFF
        assert carry == (1 if a + b > 0xFFFFFFFF else 0)
        signed = bits.s32(a) + bits.s32(b)
        assert overflow == (0 if -(1 << 31) <= signed < (1 << 31) else 1)

    @given(u32s, u32s)
    def test_sub_borrows(self, a, b):
        result, carry, overflow = bits.sub_borrows(a, b)
        assert result == (a - b) & 0xFFFFFFFF
        # ARM convention: carry set means no borrow
        assert carry == (1 if a >= b else 0)

    @given(u32s, u32s, st.integers(min_value=0, max_value=1))
    def test_adc_chains(self, a, b, carry_in):
        result, _, _ = bits.add_carries(a, b, carry_in)
        assert result == (a + b + carry_in) & 0xFFFFFFFF


class TestSignificantBytes:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (0xFF, 1), (0x100, 2), (0xFFFF, 2),
        (0x10000, 3), (0xFFFFFF, 3), (0x1000000, 4), (0xFFFFFFFF, 4),
    ])
    def test_boundaries(self, value, expected):
        assert bits.popcount_significant_bytes(value) == expected
