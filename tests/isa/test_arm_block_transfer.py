"""Tests for ARM LDM/STM block transfers, across every execution engine."""

import pytest

from repro.baselines.simplescalar import SimpleScalarArm
from repro.isa.arm import assemble, decode, encode
from repro.iss import ArmInterpreter, CompiledArmInterpreter
from repro.models.strongarm import StrongArmModel

from ..conftest import arm_program


def run_everywhere(body: str, data: str = ""):
    """Run through ISS, compiled ISS, OSM model and the hand-coded
    baseline; assert full agreement; return the interpreter."""
    source = arm_program(body, data)
    iss = ArmInterpreter(assemble(source))
    iss.run(200_000)
    compiled = CompiledArmInterpreter(assemble(source))
    compiled.run()
    model = StrongArmModel(assemble(source), perfect_memory=True)
    model.run()
    baseline = SimpleScalarArm(assemble(source))
    baseline.run()
    assert compiled.state.exit_code == iss.state.exit_code
    assert compiled.state.regs.values == iss.state.regs.values
    assert model.exit_code == iss.state.exit_code
    assert baseline.exit_code == iss.state.exit_code
    assert model.cycles == baseline.cycles
    return iss


class TestEncodingModes:
    @pytest.mark.parametrize("mnemonic,pre,up", [
        ("ldmia", 0, 1), ("ldmib", 1, 1), ("ldmda", 0, 0), ("ldmdb", 1, 0),
    ])
    def test_mode_roundtrip(self, mnemonic, pre, up):
        word = encode.block_transfer(14, 1, 2, 0b10110, pre=pre, up=up, writeback=1)
        instr = decode(0, word)
        assert instr.kind == "ldm"
        assert (instr.pre_index, instr.up) == (pre, up)
        assert instr.writeback == 1
        assert instr.reglist == 0b10110

    def test_empty_register_list_rejected(self):
        with pytest.raises(ValueError):
            encode.block_transfer(14, 1, 0, 0, 0, 1, 0)

    def test_store_reads_its_registers(self):
        word = encode.block_transfer(14, 0, 1, 0b1100, pre=0, up=1, writeback=0)
        instr = decode(0, word)
        assert instr.is_store
        assert 2 in instr.src_regs and 3 in instr.src_regs
        assert instr.dst_regs == ()

    def test_load_with_writeback_writes_base(self):
        word = encode.block_transfer(14, 1, 5, 0b11, pre=0, up=1, writeback=1)
        instr = decode(0, word)
        assert 5 in instr.dst_regs


class TestSemantics:
    def test_ia_stores_lowest_register_lowest_address(self):
        iss = run_everywhere("""
    li    r1, buf
    mov   r4, #0x11
    mov   r5, #0x22
    stmia r1, {r4, r5}
    ldr   r2, [r1]
    ldr   r3, [r1, #4]
    mov   r0, #0
""", data="buf: .space 16")
        assert iss.state.regs.values[2] == 0x11
        assert iss.state.regs.values[3] == 0x22

    def test_push_pop_are_full_descending(self):
        iss = run_everywhere("""
    mov  sp, #0x8000
    mov  r4, #7
    mov  r5, #8
    push {r4, r5}
    sub  r6, sp, #0      ; sp moved down by 8
    pop  {r1, r2}
    mov  r0, r1
""")
        regs = iss.state.regs.values
        assert regs[6] == 0x8000 - 8
        assert regs[1] == 7 and regs[2] == 8
        assert regs[13] == 0x8000  # sp restored

    def test_writeback_updates_base(self):
        iss = run_everywhere("""
    li    r1, buf
    mov   r4, #1
    mov   r5, #2
    stmia r1!, {r4, r5}
    li    r2, buf + 8
    sub   r0, r1, r2     ; r1 advanced by 8 -> 0
""", data="buf: .space 16")
        assert iss.state.exit_code == 0

    def test_return_via_pop_pc(self):
        iss = run_everywhere("""
    mov  sp, #0x8000
    bl   fn
    add  r0, r0, #1
    b    done
fn:
    push {lr}
    mov  r0, #10
    pop  {pc}
done:
    nop
""")
        assert iss.state.exit_code == 11

    def test_block_transfer_timing_scales_with_count(self):
        def cycles(body, data=""):
            model = StrongArmModel(
                assemble(arm_program(body, data)), perfect_memory=True
            )
            model.run()
            return model.cycles

        two = cycles("""
    li    r1, buf
    stmia r1, {r4, r5}
""", "buf: .space 64")
        eight = cycles("""
    li    r1, buf
    stmia r1, {r4-r11}
""", "buf: .space 64")
        assert eight - two == 6  # one extra beat per extra register
