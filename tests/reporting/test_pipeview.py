"""Tests for the pipeline-trace visualiser."""

from repro.isa.arm import assemble
from repro.models.strongarm import StrongArmModel
from repro.reporting.pipeview import PipelineTracer

from ..conftest import arm_program


def traced(body: str, data: str = ""):
    model = StrongArmModel(assemble(arm_program(body, data)), perfect_memory=True)
    tracer = PipelineTracer(model)
    model.run()
    return model, tracer


class TestPipelineTracer:
    def test_renders_one_row_per_operation(self):
        _, tracer = traced("""
    mov r1, #1
    add r2, r1, #1
""")
        text = tracer.render()
        assert "mov r1, #1" in text
        assert "add r2, r1, #1" in text
        # straight-line ops walk F D E B W
        lane = text.splitlines()[1].split("|")[1]
        assert "FDEBW" in lane

    def test_dependent_op_starts_one_cycle_later(self):
        _, tracer = traced("""
    mov r1, #1
    add r2, r1, #1
""")
        lines = tracer.render().splitlines()
        assert lines[2].split("|")[1].startswith(".FDEBW")

    def test_killed_ops_marked(self):
        _, tracer = traced("""
    b over
    mov r3, #9
over:
    mov r0, #0
""")
        assert tracer.killed_count() >= 1
        text = tracer.render()
        assert "x" in text

    def test_occupancy_counts_all_states(self):
        _, tracer = traced("    mov r1, #1\n    mov r2, #2")
        occupancy = tracer.occupancy()
        for state in "FDEBW":
            assert occupancy.get(state, 0) >= 2

    def test_chains_existing_trace_callback(self):
        model = StrongArmModel(
            assemble(arm_program("    mov r1, #1")), perfect_memory=True
        )
        seen = []
        model.director.trace = lambda c, o, e: seen.append(e.label)
        tracer = PipelineTracer(model)
        model.run()
        assert seen  # the original callback still fires
        assert tracer.render()

    def test_window_selection(self):
        _, tracer = traced("\n".join(f"    mov r{1 + (i % 8)}, #1" for i in range(20)))
        window = tracer.render(first=5, count=3)
        rows = window.splitlines()
        assert len(rows) == 4  # header + 3 ops

    def test_empty_render(self):
        model = StrongArmModel(
            assemble(arm_program("    mov r0, #0")), perfect_memory=True
        )
        tracer = PipelineTracer(model)
        assert "no operations" in tracer.render()
