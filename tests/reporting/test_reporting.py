"""Tests for table formatting and line counting."""

import pytest

from repro.reporting import baseline_counts, count_code_lines, format_table, percent, table2_counts


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "count"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert lines[2].split("|")[1].strip() == "1"

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_thousands_separator(self):
        text = format_table(["n"], [[12345]])
        assert "12,345" in text

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [], align="l")

    def test_percent(self):
        assert percent(3.14) == "+3.1%"
        assert percent(-0.5) == "-0.5%"


class TestLineCounting:
    def test_counts_exclude_comments_docstrings_blanks(self, tmp_path):
        source = tmp_path / "sample.py"
        source.write_text('''"""Module docstring
spanning lines."""

# a comment
def f():
    """Function docstring."""
    x = 1  # trailing comment

    return x
''')
        assert count_code_lines(source) == 3  # def, assign, return

    def test_table2_shape(self):
        counts = table2_counts()
        for target in ("SA-1100", "PPC-750"):
            categories = counts[target]
            assert categories["Total"] == sum(
                v for k, v in categories.items() if k != "Total"
            )
            assert categories["Total"] > 0
        # the paper's headline: PPC model is larger, decode+init dominates
        assert counts["PPC-750"]["Total"] > counts["SA-1100"]["Total"]

    def test_baseline_counts_nonzero(self):
        counts = baseline_counts()
        assert counts["SystemC-style PPC"] > 0
        assert counts["SimpleScalar-style ARM"] > 0
