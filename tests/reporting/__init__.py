"""Test package."""
