"""Tests for the tutorial 5-stage pipeline model (paper Section 4)."""

import pytest

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter
from repro.memory import Cache
from repro.models.pipeline5 import Pipeline5Model

from ..conftest import arm_program


def cycles_of(body: str, data: str = "", **kwargs) -> int:
    model = Pipeline5Model(assemble(arm_program(body, data)), **kwargs)
    model.run()
    return model.cycles


def model_for(body: str, data: str = "", **kwargs) -> Pipeline5Model:
    model = Pipeline5Model(assemble(arm_program(body, data)), **kwargs)
    model.run()
    return model


NOP8 = "\n".join("    nop" for _ in range(8))
#: truly independent single-cycle ops (nop = mov r0, r0 carries a RAW
#: dependence on itself, which stalls a no-forwarding pipeline!)
IND8 = "\n".join(f"    mov r{1 + (i % 8)}, #{i}" for i in range(8))


class TestBasicTiming:
    def test_straightline_throughput_is_one_per_cycle(self):
        # n independent ops: fill (4) + n + drain-ish; measure the delta
        base = cycles_of(IND8)
        longer = cycles_of(IND8 + "\n" + IND8)
        assert longer - base == 8

    def test_nop_is_not_independent_without_forwarding(self):
        """nop = mov r0, r0: it reads its own previous write, so a
        no-forwarding pipeline serialises nops — a deliberately surprising
        consequence of the paper's Section-4 hazard scheme."""
        nops = cycles_of(NOP8)
        independent = cycles_of(IND8)
        assert nops > independent

    def test_pipeline_depth_visible_in_fill(self):
        one = cycles_of("    nop")
        # a single instruction still traverses F D E B W + swi behind it
        assert one >= 6

    def test_functional_equivalence_with_iss(self):
        source = arm_program("""
    mov r0, #0
    mov r1, #1
loop:
    add r0, r0, r1
    add r1, r1, #1
    cmp r1, #20
    blt loop
""")
        iss = ArmInterpreter(assemble(source))
        iss.run()
        model = Pipeline5Model(assemble(source))
        model.run()
        assert model.exit_code == iss.state.exit_code
        assert model.retired == iss.steps
        assert model.state.regs.values == iss.state.regs.values


class TestDataHazards:
    def test_raw_dependence_stalls_at_decode(self):
        """Without forwarding, a dependant waits for the producer's W."""
        independent = cycles_of("""
    mov r1, #1
    mov r4, #2
    mov r5, #3
    add r6, r4, r5
""")
        dependent = cycles_of("""
    mov r1, #1
    add r2, r1, r1
    add r3, r2, r2
    add r4, r3, r3
""")
        assert dependent > independent

    def test_stall_length_matches_paper_scheme(self):
        # producer at E(t) holds the update token until W->I; three
        # independent fillers exactly cover the dependant's stall.
        fillers = "    mov r3, #1\n    mov r4, #1\n    mov r5, #1"
        covered = cycles_of(f"    mov r1, #1\n{fillers}\n    add r2, r1, r1")
        stalled = cycles_of(f"    mov r1, #1\n    add r2, r1, r1\n{fillers}")
        assert covered == stalled  # fillers hide the hazard completely

    def test_waw_ordered_by_update_tokens(self):
        model = model_for("""
    mov r1, #1
    mov r1, #2
    mov r0, r1
""")
        assert model.exit_code == 2

    def test_flag_hazard_stalls_conditional(self):
        flag_dep = cycles_of("""
    cmp r1, #0
    addeq r2, r2, #1
""")
        no_dep = cycles_of("""
    cmp r1, #0
    add r2, r2, #1
""")
        # the conditional reads flags: same producer distance as registers
        assert flag_dep >= no_dep


class TestControlHazards:
    def test_taken_branch_costs_two_bubbles(self):
        body = """
    mov r1, #{cond}
    cmp r1, #2
    beq skip
    mov r2, #1
    mov r3, #1
skip:
    mov r4, #1
"""
        not_taken = cycles_of(body.format(cond=1))  # retires 2 extra movs
        taken = cycles_of(body.format(cond=2))      # skips them, pays squash
        # taken = not_taken - 2 (skipped work) + 2 (squash bubbles)
        assert taken - not_taken == 0
        # and the kill machinery really fired for the taken variant
        model = model_for(body.format(cond=2))
        assert model.reset_unit.kills == 2

    def test_speculative_ops_are_killed_not_executed(self):
        model = model_for("""
    mov r2, #0
    b over
    add r2, r2, #90     ; wrong path: must never execute
    add r2, r2, #90
over:
    mov r0, r2
""")
        assert model.exit_code == 0
        assert model.reset_unit.kills >= 1

    def test_kills_do_not_retire(self):
        source = arm_program("""
    b over
    nop
    nop
over:
    nop
""")
        iss = ArmInterpreter(assemble(source))
        iss.run()
        model = Pipeline5Model(assemble(source))
        model.run()
        assert model.retired == iss.steps  # wrong-path ops excluded


class TestVariableLatency:
    def test_icache_miss_stalls_fetch(self):
        icache = Cache("i", size=256, line_size=16, assoc=2, miss_penalty=10)
        with_cache = cycles_of(NOP8, icache=icache)
        perfect = cycles_of(NOP8)
        assert with_cache > perfect

    def test_dcache_miss_holds_buffer_stage(self):
        dcache = Cache("d", size=256, line_size=16, assoc=2, miss_penalty=12)
        miss = cycles_of("""
    li  r1, buf
    ldr r2, [r1]
""", data="buf: .word 1", dcache=dcache)
        hit_only = cycles_of("""
    li  r1, buf
    ldr r2, [r1]
""", data="buf: .word 1")
        assert miss - hit_only >= 11

    def test_multiplier_early_termination(self):
        small = cycles_of("""
    mov r1, #3
    mov r2, #5
    mul r3, r2, r1
""" + NOP8)
        large = cycles_of("""
    li  r1, 0x7FFFFFF1
    mov r2, #5
    mul r3, r2, r1
""" + NOP8)
        assert large > small  # wide operand takes extra cycles


class TestStructureHazards:
    def test_single_stage_occupancy(self):
        """At most one operation per stage at any cycle."""
        model = Pipeline5Model(assemble(arm_program(NOP8)))
        seen_double = []

        def check(clock, osm, edge):
            stages = [o.current.name for o in model.osms if not o.in_initial]
            for name in set(stages):
                if name != "I" and stages.count(name) > 1:
                    seen_double.append((clock, name))

        model.director.trace = check
        model.run()
        assert seen_double == []


class TestEdgeBehaviour:
    def test_empty_program_halts(self):
        model = model_for("    mov r0, #0")
        assert model.exit_code == 0

    def test_max_cycles_guard(self):
        from repro.core import SimulationError

        source = """
    .text
_start:
    b _start
"""
        model = Pipeline5Model(assemble(source))
        with pytest.raises(SimulationError):
            model.run(200)
