"""Tests for the StrongARM case-study model (paper Section 5.1)."""

import pytest

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter
from repro.models.pipeline5 import Pipeline5Model
from repro.models.strongarm import StrongArmModel

from ..conftest import arm_program


def cycles_of(body: str, data: str = "", **kwargs) -> int:
    kwargs.setdefault("perfect_memory", True)
    model = StrongArmModel(assemble(arm_program(body, data)), **kwargs)
    model.run()
    return model.cycles


class TestForwarding:
    def test_alu_results_forward_back_to_back(self):
        chain = cycles_of("""
    mov r1, #1
    add r2, r1, #1
    add r3, r2, #1
    add r4, r3, #1
""")
        independent = cycles_of("""
    mov r1, #1
    mov r2, #1
    mov r3, #1
    mov r4, #1
""")
        assert chain == independent  # zero-bubble ALU-to-ALU

    def test_load_use_costs_one_bubble(self):
        load_use = cycles_of("""
    li  r1, buf
    ldr r2, [r1]
    add r3, r2, #1
""", data="buf: .word 9")
        load_filler = cycles_of("""
    li  r1, buf
    ldr r2, [r1]
    mov r4, #7
    add r3, r2, #1
""", data="buf: .word 9")
        # one independent filler hides the load-use bubble exactly
        assert load_use == load_filler

    def test_forwarding_beats_pipeline5(self):
        body = """
    mov r1, #1
    add r2, r1, #1
    add r3, r2, #1
    add r4, r3, #1
    add r5, r4, #1
"""
        sa = StrongArmModel(assemble(arm_program(body)), perfect_memory=True)
        sa.run()
        p5 = Pipeline5Model(assemble(arm_program(body)))
        p5.run()
        assert sa.cycles < p5.cycles

    def test_flag_forwarding(self):
        """cmp's flags forward to a dependent conditional next cycle."""
        paired = cycles_of("""
    mov r1, #1
    cmp r1, #1
    addeq r2, r2, #1
    cmp r1, #0
    addne r3, r3, #1
""")
        independent = cycles_of("""
    mov r1, #1
    cmp r1, #1
    add r2, r2, #1
    cmp r1, #0
    add r3, r3, #1
""")
        assert paired == independent


class TestMultiplier:
    def test_early_termination_latency_scales_with_operand(self):
        def mul_with(value):
            return cycles_of(f"""
    li  r1, {value}
    mov r2, #3
    mul r3, r2, r1      ; rs = r1 drives early termination
    add r4, r3, #1      ; dependent: sees the full latency
""")

        assert mul_with(5) < mul_with(0x12345) < mul_with(0x71234567)

    def test_multiplier_module_is_structural(self):
        model = StrongArmModel(
            assemble(arm_program("""
    li  r1, 0x7FFFFFFF
    mov r2, #3
    mul r3, r2, r1
    mul r4, r2, r2
""")),
            perfect_memory=True,
        )
        model.run()
        assert model.multiplier.manager.n_allocates == 2

    def test_non_mul_ops_skip_the_multiplier(self):
        model = StrongArmModel(
            assemble(arm_program("    add r1, r2, r3")), perfect_memory=True
        )
        model.run()
        assert model.multiplier.manager.n_allocates == 0


class TestCaches:
    def test_default_config_uses_sa1100_caches(self):
        model = StrongArmModel(assemble(arm_program("    mov r0, #0")))
        assert model.fetch.icache.n_sets * model.fetch.icache.assoc * 32 == 16 * 1024
        assert model.dcache.n_sets * model.dcache.assoc * 32 == 8 * 1024

    def test_cold_icache_slower_than_perfect(self):
        body = "\n".join(f"    mov r{1 + (i % 8)}, #1" for i in range(32))
        cold = StrongArmModel(assemble(arm_program(body)))
        cold.run()
        perfect = StrongArmModel(assemble(arm_program(body)), perfect_memory=True)
        perfect.run()
        assert cold.cycles > perfect.cycles
        assert cold.fetch.icache.stats.misses > 0


class TestFunctional:
    @pytest.mark.parametrize("kernel", ["gsm_dec", "g721_enc", "mpeg2_dec"])
    def test_mediabench_equivalence(self, kernel):
        from repro.workloads import mediabench

        source = mediabench.arm_source(kernel)
        iss = ArmInterpreter(assemble(source))
        iss.run()
        model = StrongArmModel(assemble(source))
        model.run()
        assert model.exit_code == iss.state.exit_code
        assert model.retired == iss.steps
        assert model.output_text == iss.syscalls.output_text
