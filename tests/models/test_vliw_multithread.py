"""Tests for the Section-6 extension models: VLIW and multithreaded."""

import pytest

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter
from repro.models.multithread import MultithreadModel
from repro.models.strongarm import default_dcache
from repro.models.vliw import VliwModel

from ..conftest import arm_program


class TestVliw:
    def test_width_scales_throughput(self):
        body = "\n".join(f"    mov r{1 + (i % 10)}, #{i}" for i in range(40))
        cycles = {}
        for width in (1, 2, 4):
            model = VliwModel(assemble(arm_program(body)), width=width)
            model.run()
            cycles[width] = model.cycles
        assert cycles[1] > cycles[2] > cycles[4]

    def test_no_interlocks_but_functionally_exact(self):
        """VLIW trusts the compiler for hazards yet execution stays in
        program order, so results are architecturally correct."""
        source = arm_program("""
    mov r1, #1
    add r2, r1, r1      ; back-to-back dependence: no stall charged
    add r3, r2, r2
    add r0, r3, #0
""")
        iss = ArmInterpreter(assemble(source))
        iss.run()
        model = VliwModel(assemble(source), width=2)
        model.run()
        assert model.exit_code == iss.state.exit_code == 4

    def test_taken_branch_kills_wide_slots(self):
        source = arm_program("""
    mov r2, #0
    b over
    add r2, r2, #50     ; two wrong-path slots fetched together
    add r2, r2, #50
over:
    mov r0, r2
""")
        model = VliwModel(assemble(source), width=2)
        model.run()
        assert model.exit_code == 0

    def test_lockstep_memory_stall(self):
        from repro.memory import Cache

        body = """
    li  r1, buf
    ldr r2, [r1]
    mov r3, #1
    mov r4, #1
"""
        dcache = Cache("d", size=256, line_size=16, assoc=2, miss_penalty=20)
        slow = VliwModel(assemble(arm_program(body, "buf: .word 7")),
                         width=2, dcache=dcache)
        slow.run()
        fast = VliwModel(assemble(arm_program(body, "buf: .word 7")), width=2)
        fast.run()
        assert slow.cycles > fast.cycles

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            VliwModel(assemble(arm_program("    nop")), width=0)


class TestMultithread:
    def _programs(self):
        a = arm_program("""
    mov r1, #0
    mov r2, #0
lp:
    add r2, r2, r1
    add r1, r1, #1
    cmp r1, #12
    blt lp
    mov r0, r2
""")
        b = arm_program("""
    mov r1, #3
    mov r2, #4
    mul r3, r1, r2
    mov r0, r3
""")
        return assemble(a), assemble(b)

    def test_threads_complete_with_correct_results(self):
        prog_a, prog_b = self._programs()
        model = MultithreadModel([prog_a, prog_b])
        model.run()
        assert model.exit_codes() == [66, 12]

    def test_thread_register_files_are_isolated(self):
        same = arm_program("""
    mov r1, #1
    add r1, r1, #1
    add r1, r1, #1
    mov r0, r1
""")
        model = MultithreadModel([assemble(same), assemble(same)])
        model.run()
        assert model.exit_codes() == [3, 3]

    def test_round_robin_fetch_fairness(self):
        prog = arm_program("\n".join(f"    mov r{1 + (i % 9)}, #1" for i in range(30)))
        model = MultithreadModel([assemble(prog), assemble(prog)])
        model.run()
        a, b = model.fetch.fetched_per_thread
        assert abs(a - b) <= 2

    def test_memory_latency_hiding(self):
        from repro.workloads import kernels

        sources = [kernels.arm_source("stride32"), kernels.arm_source("stride8")]
        together = MultithreadModel(
            [assemble(s) for s in sources], dcache=default_dcache()
        )
        together.run()
        solo_cycles = 0
        for source in sources:
            solo = MultithreadModel([assemble(source)], dcache=default_dcache())
            solo.run()
            solo_cycles += solo.cycles
        assert together.cycles < solo_cycles  # MT throughput win

    def test_single_thread_degenerates_gracefully(self):
        prog_a, _ = self._programs()
        model = MultithreadModel([prog_a])
        model.run()
        assert model.exit_codes() == [66]

    def test_no_programs_rejected(self):
        with pytest.raises(ValueError):
            MultithreadModel([])

    def test_branch_kill_is_thread_local(self):
        """A mispredicted branch in thread 0 must not kill thread 1 ops."""
        branchy = arm_program("""
    mov r1, #0
lp:
    add r1, r1, #1
    cmp r1, #8
    blt lp
    mov r0, r1
""")
        straight = arm_program("""
    mov r1, #1
    mov r2, #2
    mov r3, #3
    mov r4, #4
    mov r5, #5
    mov r0, #9
""")
        model = MultithreadModel([assemble(branchy), assemble(straight)])
        model.run()
        assert model.exit_codes() == [8, 9]
