"""Test package."""
