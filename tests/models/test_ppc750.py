"""Tests for the PPC-750 out-of-order superscalar model (Section 5.2)."""


from repro.isa.ppc import assemble
from repro.iss import PpcInterpreter
from repro.models.ppc750 import Ppc750Model, unit_routes

from ..conftest import ppc_program


def build(body: str, data: str = "", **kwargs) -> Ppc750Model:
    kwargs.setdefault("perfect_memory", True)
    return Ppc750Model(assemble(ppc_program(body, data)), **kwargs)


def run(body: str, data: str = "", **kwargs) -> Ppc750Model:
    model = build(body, data, **kwargs)
    model.run()
    return model


IND = "\n".join(f"    li r{3 + (i % 8)}, {i}" for i in range(16))


class TestSuperscalar:
    def test_dual_dispatch_approaches_ipc_two(self):
        model = run(IND + "\n" + IND)
        assert model.kernel.stats.ipc > 1.5

    def test_in_order_single_issue_equivalent_is_slower(self):
        wide = run(IND)
        narrow = build(IND)
        narrow.fq.dispatch_width = 1
        narrow.cq.retire_width = 1
        narrow.run()
        assert narrow.cycles > wide.cycles

    def test_out_of_order_execution_hides_long_latency(self):
        """Independent work after a divide proceeds around it."""
        blocked = run("""
    li    r4, 100
    li    r5, 7
    divw  r6, r4, r5
    add   r7, r6, r6     ; depends on the divide
    add   r8, r7, r7
    add   r9, r8, r8
    add   r10, r9, r9
""")
        overlapped = run("""
    li    r4, 100
    li    r5, 7
    divw  r6, r4, r5
    li    r7, 1          ; independent: executes under the divide
    li    r8, 2
    li    r9, 3
    li    r10, 4
""")
        assert overlapped.cycles < blocked.cycles

    def test_figure2_both_dispatch_paths_used(self):
        model = build("""
    li    r4, 1
    add   r5, r4, r4     ; dependent: goes to the reservation station
    li    r6, 2          ; independent: direct into a unit
    add   r7, r5, r6
""")
        labels = []
        model.director.trace = lambda c, o, e: labels.append(e.label)
        model.run()
        assert any(l.startswith("direct-") for l in labels)
        assert any(l.startswith("station-") for l in labels)

    def test_unit_routing(self):
        from repro.isa.ppc import decode, isa as ppc_isa
        from repro.isa.ppc import encode

        add = decode(0, encode.x_form(ppc_isa.XO_ADD, 1, 2, 3))
        mul = decode(0, encode.x_form(ppc_isa.XO_MULLW, 1, 2, 3))
        assert unit_routes(add) == (ppc_isa.UNIT_IU2, ppc_isa.UNIT_IU1)
        assert unit_routes(mul) == (ppc_isa.UNIT_IU1,)


class TestInOrderDiscipline:
    def test_retirement_is_in_program_order(self):
        model = build("""
    li    r4, 20
    li    r5, 5
    divw  r6, r4, r5     ; long latency
    li    r7, 1          ; finishes first but must retire after
""")
        retired = []
        original = model.cq.on_release_commit

        def spy(osm, token, value):
            retired.append(osm.operation.seq)  # operation still attached here
            original(osm, token, value)

        model.cq.on_release_commit = spy
        model.run()
        assert retired == sorted(retired)

    def test_dispatch_is_in_program_order(self):
        model = build(IND)
        dispatched = []
        model.director.trace = (
            lambda c, o, e: dispatched.append(o.operation.seq)
            if e.label.startswith(("direct-", "station-")) else None
        )
        model.run()
        assert dispatched == sorted(dispatched)

    def test_wrong_path_ops_never_retire(self):
        source = ppc_program("""
    li    r4, 0
    li    r5, 8
    mtctr r5
loop:
    addi  r4, r4, 1
    bdnz  loop
    mr    r3, r4
""")
        iss = PpcInterpreter(assemble(source))
        iss.run()
        model = Ppc750Model(assemble(source), perfect_memory=True)
        model.run()
        assert model.kernel.stats.instructions == iss.steps
        assert model.fetch.wrong_path_fetched > 0  # speculation happened


class TestRenaming:
    def test_rename_buffer_exhaustion_stalls_dispatch(self):
        """Seven in-flight GPR writers exceed the six rename buffers."""
        model = run("""
    li    r4, 100
    li    r5, 7
    divw  r6, r4, r5     ; holds its buffer for 19 cycles
    li    r7, 1
    li    r8, 2
    li    r9, 3
    li    r10, 4
    li    r11, 5
    li    r12, 6
    li    r13, 7
""")
        # all results still correct despite the structural stalls
        values = model.oracle.interpreter.state.regs.values
        assert values[6] == 14 and values[13] == 7

    def test_waw_and_war_removed_by_renaming(self):
        model = run("""
    li    r4, 1
    li    r5, 10
    divw  r6, r5, r4     ; slow producer of r6
    mr    r7, r6         ; RAW: waits
    li    r6, 99         ; WAW on r6: renamed, need not wait
    mr    r3, r6
""")
        assert model.exit_code == 99

    def test_self_dependence_links_to_older_producer(self):
        """Regression: addi r3, r3, 1 chains must serialise correctly."""
        model = run("""
    li    r3, 0
    addi  r3, r3, 1
    addi  r3, r3, 1
    addi  r3, r3, 1
""")
        assert model.exit_code == 3


class TestBranchPrediction:
    def test_loop_branch_learns(self):
        model = run("""
    li    r4, 0
    li    r5, 40
loop:
    addi  r4, r4, 1
    cmpw  r4, r5
    blt   loop
    mr    r3, r4
""")
        assert model.predictor.accuracy > 0.85

    def test_mispredict_squashes_and_recovers(self):
        source = ppc_program("""
    li    r4, 0
    li    r6, 0
loop:
    addi  r4, r4, 1
    andi. r5, r4, 3
    beq   mult4          ; taken every 4th iteration: hard to predict
    addi  r6, r6, 1
    b     next
mult4:
    addi  r6, r6, 10
next:
    cmpwi r4, 20
    blt   loop
    mr    r3, r6
""")
        iss = PpcInterpreter(assemble(source))
        iss.run()
        model = Ppc750Model(assemble(source), perfect_memory=True)
        model.run()
        assert model.exit_code == iss.state.exit_code
        assert model.predictor.mispredictions > 0
        assert model.kernel.stats.instructions == iss.steps

    def test_blr_predicted_through_target_cache(self):
        model = run("""
    li    r6, 0
    li    r5, 6
    mtctr r5
calls:
    bl    helper
    bdnz  calls
    mr    r3, r6
    b     fin
helper:
    addi  r6, r6, 1
    blr
fin:
    mr    r3, r6
""")
        assert model.exit_code == 6
        assert model.predictor.btic.hits > 0


class TestQueues:
    def test_completion_queue_bounds_inflight(self):
        model = build(IND)
        max_cq = []
        model.director.trace = lambda c, o, e: max_cq.append(6 - model.cq.n_free)
        model.run()
        assert max(max_cq) <= 6

    def test_fetch_queue_bounds(self):
        model = build("""
    li    r4, 100
    li    r5, 7
    divw  r6, r4, r5
""" + IND)
        model.run()
        assert model.fq.n_free >= 0


class TestParameterisation:
    def test_single_issue_configuration(self):
        model = run(IND, dispatch_width=1, retire_width=1)
        wide = run(IND)
        assert model.cycles > wide.cycles

    def test_tiny_rename_pool_stalls_but_stays_correct(self):
        source = """
    li    r4, 1
    li    r5, 2
    li    r6, 3
    li    r7, 4
    add   r3, r6, r7
"""
        constrained = run(source, gpr_rename_buffers=1)
        roomy = run(source)
        assert constrained.exit_code == roomy.exit_code == 7
        assert constrained.cycles >= roomy.cycles

    def test_fetch_queue_size_bounds_occupancy(self):
        model = build(IND, fq_size=3)
        high_water = []
        model.director.trace = lambda c, o, e: high_water.append(3 - model.fq.n_free)
        model.run()
        assert max(high_water) <= 3

    def test_deep_queues_help_around_long_latency(self):
        body = """
    li    r4, 100
    li    r5, 7
    divw  r6, r4, r5
""" + IND
        shallow = run(body, fq_size=2, cq_size=2)
        deep = run(body, fq_size=8, cq_size=8)
        assert deep.cycles <= shallow.cycles
