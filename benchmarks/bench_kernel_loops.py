"""Experiment V2 — in-text: the 40 diagnostic kernel loops.

The paper: "We used 40 small kernel loops to diagnose timing mismatches
between the model and the real processor."

This bench plays the same diagnostic: all 40 loops run on the OSM
StrongARM model and on the independently hand-coded SimpleScalar-style
simulator of the same micro-architecture, and the per-loop cycle deltas
are reported.  A healthy reproduction shows zero mismatches; any nonzero
row names the timing mechanism (the loop isolates one) that diverged.
"""

from __future__ import annotations

from repro.baselines.simplescalar import SimpleScalarArm
from repro.isa.arm import assemble
from repro.models.strongarm import StrongArmModel
from repro.reporting import format_table
from repro.workloads import kernels


def run_kernel_loops():
    rows = []
    mismatches = 0
    for name in kernels.KERNEL_NAMES:
        source = kernels.arm_source(name)
        osm = StrongArmModel(assemble(source), perfect_memory=True)
        osm.run()
        base = SimpleScalarArm(assemble(source))
        base.run()
        assert osm.exit_code == base.exit_code, f"{name}: functional mismatch"
        matched = osm.cycles == base.cycles
        if not matched:
            mismatches += 1
        rows.append([name, osm.cycles, base.cycles, "" if matched else "MISMATCH"])
    return rows, mismatches


def test_kernel_loops(benchmark, report):
    rows, mismatches = benchmark.pedantic(run_kernel_loops, rounds=1, iterations=1)
    summary = f"{len(rows) - mismatches}/{len(rows)} loops cycle-exact"
    shown = [row for row in rows if row[3]] or rows[:8]
    table = format_table(
        ["kernel loop", "OSM cycles", "hand-coded cycles", "status"],
        shown,
        title=f"V2. 40 diagnostic kernel loops — {summary}",
    )
    report("kernel_loops", table)
    assert mismatches == 0, f"{mismatches} loops diverged"
