"""Experiment S2 — in-text: PPC-750 simulation speed.

The paper: "The average speed of the OSM model is 250k cycles/sec on a
P-III 1.1GHz desktop, 4 times that of the SystemC model."

This bench races the OSM PPC-750 model against the SystemC-style
port/wire/delta-cycle model on the MediaBench + SPEC-like mix.  The
structural overhead of the hardware-centric model is also reported
directly: module evaluations per simulated cycle (every delta iteration
revisits all modules) versus the OSM director's per-cycle edge probes.
"""

from __future__ import annotations

import time

from repro.baselines.systemc_style import Ppc750SystemC
from repro.isa.ppc import assemble
from repro.models.ppc750 import Ppc750Model
from repro.reporting import format_table
from repro.workloads import mediabench, speclike

#: see bench_speed_strongarm — Python-scale guardrail, not the C++ 4x
MIN_RATIO = 0.25


def _sources():
    mix = [mediabench.ppc_source(n) for n in mediabench.MEDIABENCH_NAMES]
    mix += [speclike.ppc_source(n) for n in speclike.SPECLIKE_NAMES]
    return mix


def _run_osm(sources):
    cycles = 0
    start = time.perf_counter()
    for source in sources:
        model = Ppc750Model(assemble(source))
        model.run()
        cycles += model.cycles
    return cycles, time.perf_counter() - start


def _run_systemc(sources):
    cycles = 0
    deltas = 0
    start = time.perf_counter()
    for source in sources:
        sim = Ppc750SystemC(assemble(source))
        sim.run()
        cycles += sim.cycles
        deltas += sim.sim.delta_cycles_run
    return cycles, time.perf_counter() - start, deltas


def test_speed_ppc750(benchmark, report):
    sources = _sources()
    osm_cycles, osm_seconds = benchmark.pedantic(
        _run_osm, args=(sources,), rounds=1, iterations=1
    )
    sc_cycles, sc_seconds, sc_deltas = _run_systemc(sources)

    osm_speed = osm_cycles / osm_seconds
    sc_speed = sc_cycles / sc_seconds
    ratio = osm_speed / sc_speed
    table = format_table(
        ["simulator", "cycles", "seconds", "cycles/sec"],
        [
            ["OSM PPC-750 model", osm_cycles, f"{osm_seconds:.2f}", f"{osm_speed:,.0f}"],
            ["SystemC-style (port/wire)", sc_cycles, f"{sc_seconds:.2f}", f"{sc_speed:,.0f}"],
            ["ratio (OSM / SystemC-style)", "", "", f"{ratio:.2f}x"],
            ["delta iterations per cycle", "", "", f"{sc_deltas / sc_cycles:.2f}"],
        ],
        title="S2. PPC-750 simulation speed (paper: OSM 250k cyc/s, 4x SystemC)",
    )
    report("speed_ppc750", table)
    assert ratio >= MIN_RATIO, f"OSM unacceptably slow vs SystemC-style: {ratio:.2f}x"
    # Structural claim: the delta-cycle engine revisits every module
    # several times per simulated cycle.
    assert sc_deltas / sc_cycles >= 2.0
