"""Experiment T1 — Table 1: StrongARM model versus iPAQ run time.

The paper runs the largest MediaBench applications on an iPAQ-3650
(timed with the `time` utility) and on the OSM StrongARM model, and
reports the signed percentage difference per benchmark; all differences
are small (single-digit percent).

Here the iPAQ is the :class:`~repro.baselines.reference.IpaqReference`
detailed simulator (bus contention, DRAM page misses, syscall kernel
overhead, `time` quantisation — see DESIGN.md) and the applications are
the MediaBench-like kernels.  Kernel cycle counts are extrapolated to
application-scale run times with per-benchmark repeat factors so the
`time`-utility model operates in its real regime.
"""

from __future__ import annotations

from repro.baselines.reference import IpaqReference
from repro.isa.arm import assemble
from repro.models.strongarm import CLOCK_HZ, StrongArmModel
from repro.reporting import format_table, percent
from repro.workloads import mediabench

#: kernel-to-application extrapolation: how many kernel invocations make
#: up one application run (chosen to land in the paper's seconds range)
APP_REPEATS = {
    "gsm_dec": 120_000,
    "gsm_enc": 90_000,
    "g721_dec": 110_000,
    "g721_enc": 80_000,
    "mpeg2_dec": 60_000,
    "mpeg2_enc": 70_000,
}

MAX_ABS_DIFF_PERCENT = 8.0


def run_table1():
    rows = []
    diffs = []
    for name in mediabench.MEDIABENCH_NAMES:
        source = mediabench.arm_source(name)
        model = StrongArmModel(assemble(source))
        model.run()
        reference = IpaqReference(assemble(source))
        reference.run()
        assert model.exit_code == reference.exit_code, f"{name}: functional mismatch"
        repeats = APP_REPEATS[name]
        sim_seconds = model.cycles * repeats / CLOCK_HZ
        ref_cycles_total = reference.cycles * repeats
        ipaq_seconds = _measure_like_time(reference, ref_cycles_total)
        diff = 100.0 * (sim_seconds - ipaq_seconds) / ipaq_seconds
        diffs.append(diff)
        rows.append([name.replace("_", "/"), f"{ipaq_seconds:.2f}",
                     f"{sim_seconds:.2f}", percent(diff)])
    return rows, diffs


def _measure_like_time(reference: IpaqReference, total_cycles: int) -> float:
    from repro.baselines.reference.sim import STARTUP_OVERHEAD_SECONDS, TIME_TICK_SECONDS

    true_seconds = total_cycles / reference.clock_hz + STARTUP_OVERHEAD_SECONDS
    ticks = round(true_seconds / TIME_TICK_SECONDS)
    return max(1, ticks) * TIME_TICK_SECONDS


def test_table1_strongarm_validation(benchmark, report):
    rows, diffs = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    table = format_table(
        ["benchmark", "ipaq(sec)", "Simulator(sec)", "difference"],
        rows,
        title="Table 1. StrongARM model comparison (reproduced)",
    )
    report("table1_strongarm_validation", table)
    # Shape assertions: every difference is small, as in the paper.
    assert all(abs(d) <= MAX_ABS_DIFF_PERCENT for d in diffs), diffs
    # And non-trivial: the reference is genuinely more detailed.
    assert any(abs(d) > 0.1 for d in diffs)
