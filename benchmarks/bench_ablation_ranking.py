"""Ablation A3 — OSM ranking policy.

Section 3.4: the director ranks the OSMs at the beginning of each control
step to avoid non-determinism; Section 5: "the director ranks the OSMs
according to their ages, i.e. the order in which they last leave state
I."

This bench compares ranking policies on the PPC-750 model:

* ``seq``  — strict program order (fetch sequence number; the refined
  age ranking this reproduction uses, since several OSMs can leave I in
  the same control step of a superscalar model);
* ``age``  — the paper's age ranking with arbitrary (pool-serial) ties;
* ``reversed`` — deliberately youngest-first, to show ranking is
  load-bearing.

All policies are deterministic (the model always terminates with the
correct architectural result); they differ in cycle accuracy.
"""

from __future__ import annotations

from repro.core.director import age_rank, operation_seq_rank
from repro.isa.ppc import assemble
from repro.models.ppc750 import Ppc750Model
from repro.reporting import format_table, percent
from repro.workloads import mediabench, speclike


def _reversed_rank(osm):
    operation = osm.operation
    if operation is None:
        return (1, osm.serial)
    return (0, -operation.seq)


POLICIES = [
    ("seq", operation_seq_rank),
    ("age", age_rank),
    ("reversed", _reversed_rank),
]


def run_ablation():
    rows = []
    worst = {name: 0.0 for name, _ in POLICIES}
    for workload in ("gsm_enc", "pointer_chase"):
        if workload in speclike.SPECLIKE_NAMES:
            source = speclike.ppc_source(workload)
        else:
            source = mediabench.ppc_source(workload)
        results = {}
        for name, rank in POLICIES:
            model = Ppc750Model(assemble(source))
            model.director.rank_key = rank
            model.run()
            results[name] = model.cycles
        base = results["seq"]
        row = [workload]
        for name, _ in POLICIES:
            delta = 100.0 * (results[name] - base) / base
            worst[name] = max(worst[name], abs(delta))
            row.append(f"{results[name]} ({percent(delta)})")
        rows.append(row)
    return rows, worst


def test_ablation_ranking(benchmark, report):
    rows, worst = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["workload"] + [name for name, _ in POLICIES],
        rows,
        title="A3. OSM ranking-policy ablation (cycles, delta vs seq)",
    )
    report("ablation_ranking", table)
    # Age ranking with arbitrary tie-break stays close to program order...
    assert worst["age"] <= 20.0, worst
    # ...and determinism holds for every policy (implicitly: all runs
    # completed with correct functional results).
