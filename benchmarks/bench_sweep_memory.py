"""Experiment E2 — memory-hierarchy sweeps (extension figures).

Cache/TLB structures live purely in the hardware layer (no TMI), so
memory-system exploration never touches the operation layer — the
separation of concerns Section 4 claims.  This bench sweeps the StrongARM
D-cache size and the miss penalty on a striding workload and reports the
cycles/miss-rate series.

The sweep itself is a thin client of the fleet batch API
(:func:`repro.fleet.sweep`): each point is a plain (model, workload,
config, seed) job dict, so the same matrix can be replayed through
``repro submit`` against a shared cached server.
"""

from __future__ import annotations

from repro.fleet import sweep
from repro.reporting import format_table

WORKLOAD = "stride8"

_SIZES = (512, 1024, 2048, 8192)
_PENALTIES = (5, 15, 30, 60)


def _job(size: int, penalty: int) -> dict:
    return {
        "model": "strongarm",
        "workload": {"kind": "kernel", "name": WORKLOAD},
        "config": {
            "dcache": {"size": size, "line_size": 32, "assoc": 4,
                       "miss_penalty": penalty},
            "icache": None, "itlb": None, "dtlb": None,
            "perfect_memory": False,
        },
        "seed": 0,
    }


def run_sweeps():
    jobs = ([_job(size, 26) for size in _SIZES]
            + [_job(512, penalty) for penalty in _PENALTIES])
    records, _summary = sweep(jobs)
    bad = [r for r in records if not r["ok"]]
    assert not bad, f"sweep jobs failed: {[r['error'] for r in bad]}"
    metrics = [r["result"]["metrics"] for r in records]

    size_series = [
        (size, m["cycles"], m["dcache_hit_rate"])
        for size, m in zip(_SIZES, metrics[:len(_SIZES)])
    ]
    penalty_series = [
        (penalty, m["cycles"])
        for penalty, m in zip(_PENALTIES, metrics[len(_SIZES):])
    ]
    return size_series, penalty_series


def test_sweep_memory(benchmark, report):
    size_series, penalty_series = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    rows = [
        [f"{size}B", cycles, f"{hit_rate:.1%}"]
        for size, cycles, hit_rate in size_series
    ]
    table1 = format_table(
        ["D-cache size", "cycles", "hit rate"], rows,
        title=f"E2a. D-cache size sweep on {WORKLOAD}",
    )
    table2 = format_table(
        ["miss penalty", "cycles"],
        [[f"{p} cyc", c] for p, c in penalty_series],
        title="E2b. miss-penalty sweep (512B cache)",
    )
    report("sweep_memory", table1 + "\n\n" + table2)

    # bigger caches never lose; hit rate is monotone non-decreasing
    cycle_values = [cycles for _, cycles, _ in size_series]
    assert all(a >= b for a, b in zip(cycle_values, cycle_values[1:]))
    hit_rates = [rate for _, _, rate in size_series]
    assert all(a <= b + 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
    # cycles grow with the miss penalty
    penalty_cycles = [c for _, c in penalty_series]
    assert all(a <= b for a, b in zip(penalty_cycles, penalty_cycles[1:]))
