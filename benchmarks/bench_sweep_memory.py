"""Experiment E2 — memory-hierarchy sweeps (extension figures).

Cache/TLB structures live purely in the hardware layer (no TMI), so
memory-system exploration never touches the operation layer — the
separation of concerns Section 4 claims.  This bench sweeps the StrongARM
D-cache size and the miss penalty on a striding workload and reports the
cycles/miss-rate series.
"""

from __future__ import annotations

from repro.baselines.simplescalar import SimpleScalarArm
from repro.isa.arm import assemble
from repro.memory import Cache
from repro.models.strongarm import StrongArmModel
from repro.reporting import format_table
from repro.workloads import kernels

WORKLOAD = "stride8"


def run_sweeps():
    source = kernels.arm_source(WORKLOAD)

    size_series = []
    for size in (512, 1024, 2048, 8192):
        dcache = Cache("d", size=size, line_size=32, assoc=4, miss_penalty=26)
        model = StrongArmModel(assemble(source), dcache=dcache,
                               icache=None, itlb=None, dtlb=None,
                               perfect_memory=False)
        model.run()
        size_series.append((size, model.cycles, dcache.stats.hit_rate))

    penalty_series = []
    for penalty in (5, 15, 30, 60):
        dcache = Cache("d", size=512, line_size=32, assoc=4, miss_penalty=penalty)
        model = StrongArmModel(assemble(source), dcache=dcache,
                               icache=None, itlb=None, dtlb=None,
                               perfect_memory=False)
        model.run()
        penalty_series.append((penalty, model.cycles))
    return size_series, penalty_series


def test_sweep_memory(benchmark, report):
    size_series, penalty_series = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    rows = [
        [f"{size}B", cycles, f"{hit_rate:.1%}"]
        for size, cycles, hit_rate in size_series
    ]
    table1 = format_table(
        ["D-cache size", "cycles", "hit rate"], rows,
        title=f"E2a. D-cache size sweep on {WORKLOAD}",
    )
    table2 = format_table(
        ["miss penalty", "cycles"],
        [[f"{p} cyc", c] for p, c in penalty_series],
        title="E2b. miss-penalty sweep (512B cache)",
    )
    report("sweep_memory", table1 + "\n\n" + table2)

    # bigger caches never lose; hit rate is monotone non-decreasing
    cycle_values = [cycles for _, cycles, _ in size_series]
    assert all(a >= b for a, b in zip(cycle_values, cycle_values[1:]))
    hit_rates = [rate for _, _, rate in size_series]
    assert all(a <= b + 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
    # cycles grow with the miss penalty
    penalty_cycles = [c for _, c in penalty_series]
    assert all(a <= b for a, b in zip(penalty_cycles, penalty_cycles[1:]))
