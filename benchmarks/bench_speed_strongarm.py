"""Experiment S1 — in-text: StrongARM simulation speed.

The paper: "The resulting simulator runs at the average speed of 650k
cycles/sec on a P-III 1.1GHz desktop.  In comparison, the ARM simulator
of the SimpleScalar tool-set runs at 550k cycles/sec on the same
machine" — i.e. the OSM model is at least as fast as the hand-coded
ad-hoc simulator (~1.18x).

This bench races the two Python implementations of the same
micro-architecture on the MediaBench kernel mix and reports cycles per
wall-clock second for both.  Absolute numbers are Python-scale (the
calibration band flags absolute speed as unreproducible); the reported
shape is the ratio.
"""

from __future__ import annotations

import time

from repro.baselines.simplescalar import SimpleScalarArm
from repro.isa.arm import assemble
from repro.models.strongarm import (
    StrongArmModel,
    default_dcache,
    default_dtlb,
    default_icache,
    default_itlb,
)
from repro.reporting import format_table
from repro.workloads import mediabench

#: In the paper (C++), the OSM simulator beats SimpleScalar (1.18x):
#: the token machinery compiles away while SimpleScalar pays interpretive
#: decode per instruction.  This reproduction's hand-coded baseline keeps
#: the OSM model's pre-decoded instruction cache — removing real
#: SimpleScalar's main handicap — and in Python every token transaction
#: is several real function calls, so the ratio inverts (measured ~0.13x;
#: see EXPERIMENTS.md S1 for the analysis).  The assertion is a guardrail
#: on gross regressions, not the paper's claim.
MAX_SLOWDOWN = 16.0


def _run_osm(sources):
    cycles = 0
    start = time.perf_counter()
    for source in sources:
        model = StrongArmModel(assemble(source))
        model.run()
        cycles += model.cycles
    return cycles, time.perf_counter() - start


def _run_baseline(sources):
    cycles = 0
    start = time.perf_counter()
    for source in sources:
        sim = SimpleScalarArm(
            assemble(source),
            icache=default_icache(),
            dcache=default_dcache(),
            itlb=default_itlb(),
            dtlb=default_dtlb(),
        )
        sim.run()
        cycles += sim.cycles
    return cycles, time.perf_counter() - start


def test_speed_strongarm(benchmark, report):
    sources = [mediabench.arm_source(name) for name in mediabench.MEDIABENCH_NAMES]

    osm_cycles, osm_seconds = benchmark.pedantic(
        _run_osm, args=(sources,), rounds=1, iterations=1
    )
    base_cycles, base_seconds = _run_baseline(sources)
    assert osm_cycles == base_cycles  # same micro-architecture, cycle-exact

    osm_speed = osm_cycles / osm_seconds
    base_speed = base_cycles / base_seconds
    ratio = osm_speed / base_speed
    table = format_table(
        ["simulator", "cycles", "seconds", "cycles/sec"],
        [
            ["OSM StrongARM model", osm_cycles, f"{osm_seconds:.2f}", f"{osm_speed:,.0f}"],
            ["SimpleScalar-style (hand-coded)", base_cycles, f"{base_seconds:.2f}", f"{base_speed:,.0f}"],
            ["ratio (OSM / hand-coded)", "", "", f"{ratio:.2f}x"],
        ],
        title="S1. StrongARM simulation speed (paper: 650k vs 550k cyc/s, 1.18x)",
    )
    report("speed_strongarm", table)
    assert ratio >= 1.0 / MAX_SLOWDOWN, f"OSM unacceptably slow: {ratio:.2f}x"
