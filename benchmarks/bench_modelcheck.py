"""Model-checker state-space reduction — POR + symmetry vs naive.

Section 6 motivates extracting "model properties for formal verification
purposes"; osmcheck (``repro check``) realises that with explicit-state
exploration of the OSM × token-manager product automaton.  The naive
semantics interleaves every OSM at every state, so the reachable state
count grows steeply with the number of composed OSMs.  Symmetry
canonicalization (the OSMs are interchangeable) and partial-order
reduction (only token-contending interleavings are branched on) keep it
flat.  This bench quantifies both, checking the full default property
set of the pipeline5 pure-token abstraction at n_osms = 2..5, and
verifies the two explorations agree on every verdict.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.check import check_system, purify
from repro.analysis.registry import build_spec
from repro.reporting import format_table

RESULTS_DIR = Path(__file__).parent / "results"
N_OSMS = (2, 3, 4, 5)


def run_sweep():
    pure = purify(build_spec("pipeline5"))
    rows = []
    for n in N_OSMS:
        start = time.perf_counter()
        naive = check_system(pure.spec, pure.managers, n_osms=n, reduction=False)
        naive_dt = time.perf_counter() - start
        start = time.perf_counter()
        reduced = check_system(pure.spec, pure.managers, n_osms=n, reduction=True)
        reduced_dt = time.perf_counter() - start
        assert naive.ok == reduced.ok, f"verdicts diverge at n_osms={n}"
        assert [d.code for d in naive.diagnostics] == [
            d.code for d in reduced.diagnostics
        ], f"findings diverge at n_osms={n}"
        rows.append({
            "n_osms": n,
            "naive_states": naive.n_states,
            "naive_transitions": naive.n_transitions,
            "naive_seconds": naive_dt,
            "reduced_states": reduced.n_states,
            "reduced_transitions": reduced.n_transitions,
            "reduced_seconds": reduced_dt,
            "state_reduction": naive.n_states / reduced.n_states,
            "ok": reduced.ok,
        })
    return rows


def test_modelcheck_reduction(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        ["n_osms", "naive states", "reduced states", "reduction",
         "naive s", "reduced s"],
        [
            [row["n_osms"], row["naive_states"], row["reduced_states"],
             f"{row['state_reduction']:.1f}x",
             f"{row['naive_seconds']:.3f}", f"{row['reduced_seconds']:.3f}"]
            for row in rows
        ],
    )
    report("modelcheck", "Model-checker reduction (pipeline5 pure-token abstraction)\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "modelcheck.json").write_text(json.dumps(rows, indent=2) + "\n")

    at4 = next(row for row in rows if row["n_osms"] == 4)
    assert at4["state_reduction"] >= 5.0, (
        f"expected >=5x state reduction at n_osms=4, got {at4['state_reduction']:.1f}x"
    )
    assert all(row["ok"] for row in rows)
