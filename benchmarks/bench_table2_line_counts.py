"""Experiment T2 — Table 2: source code line numbers.

The paper reports line counts of both OSM simulators by category
(modules with TMI / without TMI / decoding and OSM init. / misc.), notes
that about 60% of the source is decoding and OSM initialisation (the
part an ADL can synthesise), and compares with hand-written simulators
(SimpleScalar-ARM: 4,633 lines of C; SystemC PPC: ~16,000 lines of C++).

This bench applies the same counting rules (no blanks, no comments, no
docstrings, semantics excluded) to this repository.
"""

from __future__ import annotations

from repro.reporting import baseline_counts, format_table, table2_counts

CATEGORIES = [
    "Modules with TMI",
    "Modules without TMI",
    "Decoding and OSM init.",
    "Miscellaneous",
    "Total",
]


def run_table2():
    return table2_counts(), baseline_counts()


def test_table2_line_counts(benchmark, report):
    counts, baselines = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    rows = [[cat, counts["SA-1100"][cat], counts["PPC-750"][cat]] for cat in CATEGORIES]
    table = format_table(
        ["parts", "SA-1100", "PPC-750"],
        rows,
        title="Table 2. Source code line numbers (reproduced)",
    )
    extra = format_table(
        ["hand-written comparison", "lines"],
        [[name, value] for name, value in baselines.items()],
    )
    report("table2_line_counts", table + "\n\n" + extra)

    for target in ("SA-1100", "PPC-750"):
        total = counts[target]["Total"]
        decode_share = counts[target]["Decoding and OSM init."] / total
        # Paper: "About 60% of the source code in Table 2 is dedicated to
        # instruction decoding and OSM initialization."
        assert 0.4 <= decode_share <= 0.8, (target, decode_share)
    # PPC model is bigger than the ARM model, as in the paper (5,004 vs 3,032).
    assert counts["PPC-750"]["Total"] > counts["SA-1100"]["Total"]
    # The hand-written ARM baseline has no OSM core to amortise; the OSM
    # SA-1100 model spends most of its lines in synthesisable decode/init.
    sa_hand = counts["SA-1100"]["Total"] - counts["SA-1100"]["Decoding and OSM init."]
    assert sa_hand < baselines["SimpleScalar-style ARM"]
