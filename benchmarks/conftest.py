"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table/figure/in-text result of the
paper (see DESIGN.md section 4 for the experiment index).  Reports are
printed around pytest's capture (``report`` fixture) and archived under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def report(capsys):
    """Print a report to the real terminal and archive it."""

    def emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return emit


@pytest.fixture(scope="session")
def mediabench_arm_programs():
    from repro.isa.arm import assemble
    from repro.workloads import mediabench

    return {
        name: mediabench.arm_source(name)
        for name in mediabench.MEDIABENCH_NAMES
    }


@pytest.fixture(scope="session")
def mediabench_ppc_sources():
    from repro.workloads import mediabench

    return {
        name: mediabench.ppc_source(name)
        for name in mediabench.MEDIABENCH_NAMES
    }


@pytest.fixture(scope="session")
def speclike_ppc_sources():
    from repro.workloads import speclike

    return {name: speclike.ppc_source(name) for name in speclike.SPECLIKE_NAMES}
