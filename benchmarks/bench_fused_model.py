"""Whole-model specialization A/B — fused per-state steppers on vs off.

The fused steppers (repro.core.fuse) collapse each OSM state's ordered
edge probes, token-buffer bookkeeping and transition commit into one
generated function, gated per state by the effect/purity analysis.  This
bench runs both case-study models (StrongARM on ARM MediaBench, PPC 750
on PPC MediaBench) with fusion on and off, asserts bit-identical
simulation results — cycles, retired instructions, committed transitions
— and reports the speedup.  It is the benchmark-shaped sibling of the
CI perf-smoke A/B gate and of tests/integration/test_fastpath_determinism.
"""

from __future__ import annotations

import time

from repro.isa.arm import assemble as assemble_arm
from repro.isa.ppc import assemble as assemble_ppc
from repro.models.ppc750 import Ppc750Model
from repro.models.strongarm import StrongArmModel
from repro.reporting import format_table
from repro.workloads import mediabench

WORKLOADS = ("gsm_dec", "g721_enc", "mpeg2_dec")

CASES = (
    ("strongarm", StrongArmModel, assemble_arm, mediabench.arm_source),
    ("ppc750", Ppc750Model, assemble_ppc, mediabench.ppc_source),
)


def _run(model_class, program, fused):
    model = model_class(program, fused=fused)
    start = time.perf_counter()
    stats = model.run()
    seconds = time.perf_counter() - start
    result = (stats.cycles, stats.instructions, stats.transitions,
              model.exit_code)
    return result, seconds


def run_ab():
    rows = []
    speedups = {}
    for model_name, model_class, assemble, source_of in CASES:
        total_cycles = 0
        total_fused = total_plain = 0.0
        for name in WORKLOADS:
            program = assemble(source_of(name))
            result_fused, seconds_fused = _run(model_class, program, True)
            result_plain, seconds_plain = _run(model_class, program, False)
            # The specialization must be invisible in the results.
            assert result_fused == result_plain, (
                model_name, name, result_fused, result_plain)
            total_cycles += result_fused[0]
            total_fused += seconds_fused
            total_plain += seconds_plain
            rows.append([
                f"{model_name}/{name}", result_fused[0],
                f"{result_fused[0] / seconds_fused:,.0f}",
                f"{result_plain[0] / seconds_plain:,.0f}",
                f"{seconds_plain / seconds_fused:.2f}x",
            ])
        speedups[model_name] = total_plain / total_fused
        rows.append([
            f"{model_name} overall", total_cycles,
            f"{total_cycles / total_fused:,.0f}",
            f"{total_cycles / total_plain:,.0f}",
            f"{speedups[model_name]:.2f}x",
        ])
    return rows, speedups


def test_fused_model_ab(benchmark, report):
    rows, speedups = benchmark.pedantic(run_ab, rounds=1, iterations=1)
    table = format_table(
        ["workload", "cycles", "fused cyc/s", "unfused cyc/s", "speedup"],
        rows,
        title="Whole-model specialization (identical results, different speed)",
    )
    report("fused_model_ab", table)
    # The result equality asserted per workload is the correctness claim;
    # the speed claim is deliberately loose (CI boxes are noisy) — fusion
    # must at minimum not be catastrophically slower.
    for model_name, speedup in speedups.items():
        assert speedup > 0.5, (model_name, speedup)
