"""Ablation A1 — director outer-loop restart.

Section 3.4's scheduling algorithm restarts the outer loop after every
committed transition so that higher-ranked OSMs blocked on a resource
freed by a lower-ranked one still transition in the same control step.
Section 5 observes that for the two case studies "no senior operation
will depend on junior operation for resources", so the restart can be
disabled.

Reproduction finding: that optimisation is safe for the in-order
StrongARM model (identical cycles) but NOT for the out-of-order PPC-750
model — a senior op waiting in a reservation station depends on the
(junior-held) function unit being freed, and single-pass scheduling
starves it behind younger direct dispatches.  This bench quantifies both.
"""

from __future__ import annotations

from repro.isa.arm import assemble as asm_arm
from repro.isa.ppc import assemble as asm_ppc
from repro.models.ppc750 import Ppc750Model
from repro.models.strongarm import StrongArmModel
from repro.reporting import format_table, percent
from repro.workloads import mediabench, speclike


def run_ablation():
    rows = []
    # StrongARM: restart on/off must agree (the paper's claim holds).
    arm_deltas = []
    for name in ("gsm_dec", "mpeg2_enc"):
        source = mediabench.arm_source(name)
        on = StrongArmModel(asm_arm(source), restart=True)
        on.run()
        off = StrongArmModel(asm_arm(source), restart=False)
        off.run()
        delta = 100.0 * (off.cycles - on.cycles) / on.cycles
        arm_deltas.append(delta)
        rows.append([f"StrongARM {name}", on.cycles, off.cycles, percent(delta)])
    # PPC-750: restart off causes priority inversion on dependence chains.
    ppc_deltas = []
    for name in ("pointer_chase", "gsm_dec", "lz_compress"):
        if name in speclike.SPECLIKE_NAMES:
            source = speclike.ppc_source(name)
        else:
            source = mediabench.ppc_source(name)
        on = Ppc750Model(asm_ppc(source), restart=True)
        on.run()
        off = Ppc750Model(asm_ppc(source), restart=False)
        off.run()
        delta = 100.0 * (off.cycles - on.cycles) / on.cycles
        ppc_deltas.append(delta)
        rows.append([f"PPC-750 {name}", on.cycles, off.cycles, percent(delta)])
    return rows, arm_deltas, ppc_deltas


def test_ablation_director_restart(benchmark, report):
    rows, arm_deltas, ppc_deltas = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["model / workload", "restart on", "restart off", "cycle inflation"],
        rows,
        title="A1. Director outer-loop restart ablation",
    )
    report("ablation_director", table)
    # In-order: the case-study optimisation is exact.
    assert all(abs(d) < 0.01 for d in arm_deltas), arm_deltas
    # Out-of-order: disabling the restart inflates cycle counts.
    assert max(ppc_deltas) > 5.0, ppc_deltas
    assert all(d >= -0.01 for d in ppc_deltas), ppc_deltas
