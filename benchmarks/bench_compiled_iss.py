"""Experiment F1 — ISS technique comparison (paper Section 1 context).

Section 1 classifies functional-simulation techniques: "interpreted
simulation, statically-compiled simulation [17] and dynamically-compiled
simulation [3]" (Shade).  This bench measures the bundled interpreted ISS
against the dynamically-compiled ISS on the MediaBench kernel mix — the
technique gap that motivates fast functional backbones for
micro-architecture simulators.
"""

from __future__ import annotations

import time

from repro.isa.arm import assemble
from repro.iss import ArmInterpreter, CompiledArmInterpreter
from repro.reporting import format_table
from repro.workloads import mediabench

SCALE = 6
MIN_SPEEDUP = 2.0


def _run(factory, sources):
    instructions = 0
    start = time.perf_counter()
    for source in sources:
        iss = factory(assemble(source))
        iss.run()
        instructions += iss.steps
    return instructions, time.perf_counter() - start


def test_compiled_iss_speedup(benchmark, report):
    sources = [
        mediabench.arm_source(name, scale=SCALE)
        for name in mediabench.MEDIABENCH_NAMES
    ]
    compiled_instrs, compiled_seconds = benchmark.pedantic(
        _run, args=(CompiledArmInterpreter, sources), rounds=1, iterations=1
    )
    interp_instrs, interp_seconds = _run(ArmInterpreter, sources)
    assert compiled_instrs == interp_instrs  # same work, exactly

    compiled_speed = compiled_instrs / compiled_seconds
    interp_speed = interp_instrs / interp_seconds
    speedup = compiled_speed / interp_speed
    table = format_table(
        ["technique", "instructions", "seconds", "instr/sec"],
        [
            ["interpreted", interp_instrs, f"{interp_seconds:.2f}", f"{interp_speed:,.0f}"],
            ["dynamically compiled", compiled_instrs, f"{compiled_seconds:.2f}", f"{compiled_speed:,.0f}"],
            ["speedup", "", "", f"{speedup:.2f}x"],
        ],
        title="F1. ISS technique comparison (Section-1 context: Shade-style "
              "dynamic compilation vs interpretation)",
    )
    report("compiled_iss", table)
    assert speedup >= MIN_SPEEDUP
