"""Ablation A2 — DE-embedded kernel (Fig. 4) vs cycle-driven kernel.

The paper presents the general simulation kernel as an OSM control step
embedded in a discrete-event scheduler (Figure 4), then notes that both
case studies actually use cycle-driven simulation for the hardware layer
(Section 5) — the specialisation Asim also makes for speed.

This bench runs the same StrongARM model under both kernels, asserts
identical cycle counts (the embedding is semantics-preserving) and
reports the speed cost of the event queue.
"""

from __future__ import annotations

import time

from repro.core import CycleDrivenKernel, SimulationKernel
from repro.isa.arm import assemble
from repro.models.strongarm import StrongArmModel
from repro.reporting import format_table
from repro.workloads import mediabench


def _run(kernel_class, source):
    model = StrongArmModel(assemble(source))
    if kernel_class is SimulationKernel:
        kernel = SimulationKernel(model.director, model.kernel.modules)
        kernel.stop_condition = model.kernel.stop_condition
        model.kernel = kernel
    start = time.perf_counter()
    model.run()
    return model.cycles, time.perf_counter() - start


def run_ablation():
    rows = []
    total = {"cycle": [0, 0.0], "de": [0, 0.0]}
    for name in ("gsm_dec", "g721_enc", "mpeg2_dec"):
        source = mediabench.arm_source(name)
        cycles_cd, seconds_cd = _run(CycleDrivenKernel, source)
        cycles_de, seconds_de = _run(SimulationKernel, source)
        assert cycles_cd == cycles_de, (name, cycles_cd, cycles_de)
        total["cycle"][0] += cycles_cd
        total["cycle"][1] += seconds_cd
        total["de"][0] += cycles_de
        total["de"][1] += seconds_de
        rows.append([name, cycles_cd, f"{cycles_cd / seconds_cd:,.0f}",
                     f"{cycles_de / seconds_de:,.0f}"])
    speed_cd = total["cycle"][0] / total["cycle"][1]
    speed_de = total["de"][0] / total["de"][1]
    return rows, speed_cd, speed_de


def test_ablation_kernel(benchmark, report):
    rows, speed_cd, speed_de = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows.append(["overall cyc/s", "", f"{speed_cd:,.0f}", f"{speed_de:,.0f}"])
    table = format_table(
        ["workload", "cycles", "cycle-driven cyc/s", "DE-embedded cyc/s"],
        rows,
        title="A2. Simulation kernel ablation (identical timing, different speed)",
    )
    report("ablation_kernel", table)
    # The DE kernel must not be catastrophically slower, and the timing
    # equality asserted per-workload is the real reproduction result.
    assert speed_de > 0.2 * speed_cd
