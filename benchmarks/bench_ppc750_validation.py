"""Experiment V1 — in-text: PPC-750 model validated within 3%.

The paper: "We validated our PowerPC 750 model against the SystemC based
model.  We tested a benchmark mix from MediaBench and SPECint 2000 and
found that the differences in timing are within 3% in all cases.  The
remaining differences are mainly due to subtle mismatches in interpreting
the micro-architecture specifications between the two models."

This bench runs the same mix through the OSM model and the SystemC-style
model and reports the per-benchmark timing delta.  The residual non-zero
rows come from intra-cycle ordering interpretation (delta-settled grants
versus director-scheduled transitions) — the same class of mismatch the
paper describes.
"""

from __future__ import annotations

from repro.baselines.systemc_style import Ppc750SystemC
from repro.isa.ppc import assemble
from repro.models.ppc750 import Ppc750Model
from repro.reporting import format_table, percent
from repro.workloads import mediabench, speclike

MAX_ABS_DELTA_PERCENT = 3.0


def run_validation():
    rows = []
    deltas = []
    names = list(mediabench.MEDIABENCH_NAMES) + list(speclike.SPECLIKE_NAMES)
    for name in names:
        if name in mediabench.MEDIABENCH_NAMES:
            source = mediabench.ppc_source(name)
        else:
            source = speclike.ppc_source(name)
        osm = Ppc750Model(assemble(source))
        osm.run()
        systemc = Ppc750SystemC(assemble(source))
        systemc.run()
        assert osm.exit_code == systemc.exit_code, f"{name}: functional mismatch"
        assert osm.kernel.stats.instructions == systemc.instructions, name
        delta = 100.0 * (osm.cycles - systemc.cycles) / systemc.cycles
        deltas.append(delta)
        rows.append([name, osm.cycles, systemc.cycles, percent(delta)])
    return rows, deltas


def test_ppc750_validation(benchmark, report):
    rows, deltas = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    table = format_table(
        ["benchmark", "OSM cycles", "SystemC-style cycles", "difference"],
        rows,
        title="V1. PPC-750 model vs SystemC-style model (paper: within 3%)",
    )
    report("ppc750_validation", table)
    assert all(abs(d) <= MAX_ABS_DELTA_PERCENT for d in deltas), deltas
