"""Experiment E1 — superscalar resource sweeps (extension figures).

The paper's point about expressiveness is that OSM models make
micro-architecture exploration cheap: resources are token pools, so
design-space sweeps are parameter changes.  This bench demonstrates it by
sweeping the PPC-750's dispatch/retire width, fetch-queue depth and
rename-buffer count, and reporting the IPC series a design-exploration
figure would plot.
"""

from __future__ import annotations

from repro.isa.ppc import assemble
from repro.models.ppc750 import Ppc750Model
from repro.reporting import format_table
from repro.workloads import mediabench

WORKLOAD = "gsm_dec"


def run_sweeps():
    source = mediabench.ppc_source(WORKLOAD)

    def ipc(**kwargs):
        model = Ppc750Model(assemble(source), perfect_memory=True, **kwargs)
        stats = model.run()
        return stats.ipc

    width_series = [(w, ipc(dispatch_width=w, retire_width=w)) for w in (1, 2, 3, 4)]
    fq_series = [(size, ipc(fq_size=size)) for size in (2, 4, 6, 12)]
    rename_series = [(n, ipc(gpr_rename_buffers=n)) for n in (2, 4, 6, 12)]
    return width_series, fq_series, rename_series


def test_sweep_superscalar(benchmark, report):
    width_series, fq_series, rename_series = benchmark.pedantic(
        run_sweeps, rounds=1, iterations=1
    )
    rows = []
    for (w, w_ipc), (q, q_ipc), (r, r_ipc) in zip(width_series, fq_series, rename_series):
        rows.append([
            f"width={w}", f"{w_ipc:.3f}",
            f"fq={q}", f"{q_ipc:.3f}",
            f"renames={r}", f"{r_ipc:.3f}",
        ])
    table = format_table(
        ["dispatch/retire", "IPC", "fetch queue", "IPC", "GPR renames", "IPC"],
        rows,
        title=f"E1. PPC-750 resource sweeps on {WORKLOAD} (IPC series)",
        align="lrlrlr",
    )
    report("sweep_superscalar", table)

    # monotone shapes: wider/deeper never hurts, and each resource
    # saturates (diminishing returns)
    widths = [ipc for _, ipc in width_series]
    assert widths[1] > widths[0]          # dual dispatch beats single
    assert widths[-1] >= widths[1] * 0.99  # beyond 2: little change
    fqs = [ipc for _, ipc in fq_series]
    assert fqs[-1] >= fqs[0]
    renames = [ipc for _, ipc in rename_series]
    assert renames[2] > renames[0]        # 2 buffers starve dispatch
