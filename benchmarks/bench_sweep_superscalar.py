"""Experiment E1 — superscalar resource sweeps (extension figures).

The paper's point about expressiveness is that OSM models make
micro-architecture exploration cheap: resources are token pools, so
design-space sweeps are parameter changes.  This bench demonstrates it by
sweeping the PPC-750's dispatch/retire width, fetch-queue depth and
rename-buffer count, and reporting the IPC series a design-exploration
figure would plot.

The sweep itself is a thin client of the fleet batch API
(:func:`repro.fleet.sweep`): each point is a plain (model, workload,
config, seed) job dict, so the same matrix can be replayed through
``repro submit`` against a shared cached server.
"""

from __future__ import annotations

from repro.fleet import sweep
from repro.reporting import format_table

WORKLOAD = "gsm_dec"

_WIDTHS = (1, 2, 3, 4)
_FQ_SIZES = (2, 4, 6, 12)
_RENAMES = (2, 4, 6, 12)


def _job(**config) -> dict:
    return {
        "model": "ppc750",
        "workload": {"kind": "mediabench", "name": WORKLOAD},
        "config": {"perfect_memory": True, **config},
        "seed": 0,
    }


def run_sweeps():
    jobs = ([_job(dispatch_width=w, retire_width=w) for w in _WIDTHS]
            + [_job(fq_size=size) for size in _FQ_SIZES]
            + [_job(gpr_rename_buffers=n) for n in _RENAMES])
    records, _summary = sweep(jobs)
    bad = [r for r in records if not r["ok"]]
    assert not bad, f"sweep jobs failed: {[r['error'] for r in bad]}"
    ipcs = [r["result"]["metrics"]["ipc"] for r in records]

    width_series = list(zip(_WIDTHS, ipcs[:4]))
    fq_series = list(zip(_FQ_SIZES, ipcs[4:8]))
    rename_series = list(zip(_RENAMES, ipcs[8:]))
    return width_series, fq_series, rename_series


def test_sweep_superscalar(benchmark, report):
    width_series, fq_series, rename_series = benchmark.pedantic(
        run_sweeps, rounds=1, iterations=1
    )
    rows = []
    for (w, w_ipc), (q, q_ipc), (r, r_ipc) in zip(width_series, fq_series, rename_series):
        rows.append([
            f"width={w}", f"{w_ipc:.3f}",
            f"fq={q}", f"{q_ipc:.3f}",
            f"renames={r}", f"{r_ipc:.3f}",
        ])
    table = format_table(
        ["dispatch/retire", "IPC", "fetch queue", "IPC", "GPR renames", "IPC"],
        rows,
        title=f"E1. PPC-750 resource sweeps on {WORKLOAD} (IPC series)",
        align="lrlrlr",
    )
    report("sweep_superscalar", table)

    # monotone shapes: wider/deeper never hurts, and each resource
    # saturates (diminishing returns)
    widths = [ipc for _, ipc in width_series]
    assert widths[1] > widths[0]          # dual dispatch beats single
    assert widths[-1] >= widths[1] * 0.99  # beyond 2: little change
    fqs = [ipc for _, ipc in fq_series]
    assert fqs[-1] >= fqs[0]
    renames = [ipc for _, ipc in rename_series]
    assert renames[2] > renames[0]        # 2 buffers starve dispatch
